//! Incremental reasoning sessions: mutable knowledge bases with
//! delta-driven, module-granular cache invalidation and (optionally)
//! write-ahead-logged durability.
//!
//! Every other entry point in this crate rebuilds the world on any KB
//! change: [`crate::Reasoner4`] is constructed from an immutable
//! [`KnowledgeBase4`], so one added or retracted axiom throws away the
//! told index, the per-module engines, the compiled Horn programs and
//! the entailment cache. A [`Session`] keeps them: on mutation it
//! computes the delta's signature atoms ([`crate::dataflow`]), updates
//! the dependency graph in place, and invalidates **only** the state
//! the delta can actually reach.
//!
//! # What survives a delta, and why that is sound
//!
//! The session's caches are all keyed by the extracted `⊤`-locality
//! module of the query seed (a `BTreeSet` of axiom slot ids). Slots are
//! *tombstoned*, never compacted: a retracted axiom keeps its slot id
//! with empty classical images, which makes it vacuously `⊤`-local —
//! it can never again enter a module, and every surviving module key
//! stays valid.
//!
//! * **Add** of axiom `δ`: a cached module `(M, Σ)` is dirty iff some
//!   classical image of `δ` fails `⊤`-locality w.r.t. `Σ`
//!   ([`dataflow::axiom_local`]). If every image is `Σ`-local it is
//!   also local w.r.t. every *intermediate* signature of a fresh
//!   re-extraction (locality reads only `Σ ∩ atoms(δ)` and is
//!   anti-monotone in `Σ`), so the fixpoint re-run admits exactly the
//!   old members — the cached engine, Horn program, and every
//!   entailment answered through `M` are still exact. Never-local
//!   axioms (`≠`, nominal assertions, negative role assertions) fail
//!   the test against *every* signature and so dirty every module,
//!   which is precisely right: they join every extraction. When several
//!   seeds extract the *same* axiom set and share one cache entry, `Σ`
//!   is the union of their closed signatures — locality w.r.t. the
//!   union implies locality w.r.t. each (anti-monotonicity again), so
//!   the shared test can only over-invalidate, never spare a stale
//!   module.
//! * **Retract** of slot `i`: a module is dirty iff `i ∈ M`. A module
//!   that never admitted `i` ran its whole fixpoint without `i`
//!   influencing any admission, so removing `i` re-runs identically.
//!
//! Entailment-cache entries are tagged with the module key that
//! answered them and die with it. Told-index rows are maintained by
//! [`ToldIndex::note_added`]/[`ToldIndex::note_retracted`] (an equality
//! merge rebuilds the index — the class partition itself moved).
//!
//! # Durability
//!
//! [`Session::open`] adds a write-ahead log: one text line per
//! mutation (`add <axiom>` / `retract <axiom>` in the [`crate::parser4`]
//! syntax, so the log is human-readable and replays through the normal
//! parser), a periodic binary snapshot in a `DLK4` format framed with
//! the [`dl::snapshot`] wire primitives, and replay-on-open recovery. A
//! mutation is committed once its newline reaches the file; on reopen,
//! a partial final line (the torn write of a crash) is dropped and
//! truncated away, while a malformed *committed* line is reported as
//! [`SessionError::Corrupt`] rather than silently skipped.

use crate::cache::{lock_mutex, recover, ShardedMap};
use crate::dataflow::{self, axiom_local, ModuleExtractor, SigAtom};
use crate::hardness;
use crate::horn::{self, HornProgram};
use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};
use crate::parser4::parse_kb4;
use crate::printer4::print_axiom4;
use crate::reasoner4::subsumption_probe;
use crate::serve::{self, SharedModuleCache};
use crate::told::ToldIndex;
use crate::transform::{self, Transformer};
use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{DataRoleName, IndividualName, RoleName};
use dl::snapshot::{self as wire, SnapshotError};
use dl::Concept;
use fourval::TruthValue;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tableau::{Config, QueryEngine, ReasonerError, Stats};

/// WAL file name inside a session directory.
pub const WAL_FILE: &str = "session.wal";
/// Snapshot file name inside a session directory.
pub const SNAPSHOT_FILE: &str = "session.snap";
/// First line of every WAL file.
const WAL_HEADER: &str = "# shoin4 session wal v1";
/// Default mutations-per-snapshot compaction period for [`Session::open`].
pub const DEFAULT_SNAPSHOT_EVERY: usize = 256;

/// Failures of the durable session machinery. Reasoning failures keep
/// their own type ([`ReasonerError`]); this covers storage and replay.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure on the WAL or snapshot.
    Io(std::io::Error),
    /// A *committed* WAL line (newline present) failed to parse or
    /// replay — the log is damaged, not merely torn.
    Corrupt {
        /// 1-based line number in the WAL.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The binary snapshot failed to decode.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session io error: {e}"),
            SessionError::Corrupt { line, message } => {
                write!(f, "corrupt session wal at line {line}: {message}")
            }
            SessionError::Snapshot(e) => write!(f, "corrupt session snapshot: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> Self {
        SessionError::Snapshot(e)
    }
}

/// One cached module: the engine and Horn program are built lazily
/// (a module answered purely by saturation never pays for a tableau
/// engine, and vice versa) and die together when the module is
/// invalidated.
struct ModuleEntry {
    /// Member slot ids — the cache key, shared with the entailment
    /// cache's per-entry tags.
    key: Arc<BTreeSet<usize>>,
    /// Content address of the module's classical image
    /// ([`serve::structural_key`]), computed lazily — only sessions
    /// wired to a [`SharedModuleCache`] ever ask for it.
    skey: OnceLock<Arc<str>>,
    /// The engine plus whether it was *adopted* from the shared cache
    /// (an adopted engine's search counters belong to the building
    /// tenant, so [`Session::stats`] skips them).
    engine: OnceLock<(Arc<QueryEngine>, bool)>,
    horn: OnceLock<Option<Arc<HornProgram>>>,
    /// Static [`crate::hardness`] score of the module's classical
    /// image. Dies with the entry on invalidation, so the delta
    /// machinery keeps predictions as fresh as every other artifact.
    hardness: OnceLock<f64>,
}

/// The map slot around a [`ModuleEntry`]: distinct seeds can extract
/// the *same* axiom set (the empty module most of all) and share the
/// entry, so the signature the add-side dirty test checks must be the
/// **union** of every contributing extraction's closed signature. That
/// stays sound by anti-monotonicity — an axiom `⊤`-local w.r.t. the
/// union is local w.r.t. each contributing signature, hence w.r.t.
/// every intermediate signature of each seed's re-extraction — and
/// errs only toward extra invalidation, never staleness.
struct ModuleSlot {
    signature: BTreeSet<SigAtom>,
    entry: Arc<ModuleEntry>,
}

/// What the entailment cache remembers per `(a, C̄)` probe: the
/// classical verdict plus the key of the module that answered it (the
/// entry dies with that module).
type CachedVerdict = (bool, Arc<BTreeSet<usize>>);

/// Which side of a mutation an invalidation pass is running for.
#[derive(Clone, Copy)]
enum Delta {
    Add(usize),
    Retract(usize),
}

/// A mutable four-valued knowledge base with incremental reasoning.
///
/// Mutation verbs ([`Session::add_axiom`], [`Session::retract_axiom`])
/// take `&mut self`; query verbs mirror [`crate::Reasoner4`] and take
/// `&self`. The query pipeline is the full optimized stack — told fast
/// path, entailment cache, per-module engines, and (under
/// `Config::horn_path`) the Horn saturation path — with every cache
/// maintained across mutations by the invalidation pass described in
/// the module docs.
pub struct Session {
    /// Tombstoned axiom store: `None` slots are retracted. Slot ids are
    /// stable for the life of the session (module keys index into this).
    slots: Vec<Option<Axiom4>>,
    live: usize,
    extractor: ModuleExtractor,
    told: ToldIndex,
    transformer: Mutex<Transformer>,
    modules: Mutex<HashMap<BTreeSet<usize>, ModuleSlot>>,
    /// `(a, C̄) → (verdict, answering module key)`.
    instance_cache: ShardedMap<(IndividualName, Concept), CachedVerdict>,
    config: Config,
    /// `config` with scoping off — what the per-module engines run.
    sub_config: Config,
    /// Counters accumulated at session level (mutations, invalidations,
    /// extraction work, Horn answers) plus the stats of every engine
    /// retired by invalidation, so nothing is lost when a module dies.
    stats: Mutex<Stats>,
    /// Durability; `None` for in-memory sessions.
    wal: Option<Wal>,
    snapshot_every: usize,
    mutations_since_snapshot: usize,
    /// Cross-tenant shared cache ([`Session::with_shared`]); `None` for
    /// standalone sessions.
    shared: Option<Arc<SharedModuleCache>>,
}

impl Session {
    /// An in-memory session (no durability) over an initial KB.
    pub fn new(kb: &KnowledgeBase4, config: Config) -> Session {
        Self::from_axioms(kb.axioms().to_vec(), config)
    }

    /// An in-memory session wired to a cross-tenant
    /// [`SharedModuleCache`]: per-module engines, Horn programs and
    /// query verdict rows are looked up (and published) under the
    /// module's structural key, so identical modules across sessions
    /// hit one cache entry. The cache's `build_config` must derive from
    /// the same `config` (guaranteed when both come from one
    /// [`crate::serve::Registry`]).
    pub fn with_shared(
        kb: &KnowledgeBase4,
        config: Config,
        shared: Arc<SharedModuleCache>,
    ) -> Session {
        let mut session = Self::from_axioms(kb.axioms().to_vec(), config);
        session.shared = Some(shared);
        session
    }

    fn from_axioms(axioms: Vec<Axiom4>, config: Config) -> Session {
        let kb = KnowledgeBase4::from_axioms(axioms.iter().cloned());
        let sub_config = Config {
            module_scoping: false,
            ..config.clone()
        };
        Session {
            extractor: ModuleExtractor::new(&kb),
            told: ToldIndex::build(&kb),
            live: axioms.len(),
            slots: axioms.into_iter().map(Some).collect(),
            transformer: Mutex::new(Transformer::memoized()),
            modules: Mutex::new(HashMap::new()),
            instance_cache: ShardedMap::new(),
            config,
            sub_config,
            stats: Mutex::new(Stats::default()),
            wal: None,
            snapshot_every: 0,
            mutations_since_snapshot: 0,
            shared: None,
        }
    }

    /// Open (or create) a durable session in `dir` with the default
    /// snapshot period. Replays `snapshot → WAL` on open; see
    /// [`Session::open_with`].
    pub fn open(dir: impl AsRef<Path>, config: Config) -> Result<Session, SessionError> {
        Self::open_with(dir, config, DEFAULT_SNAPSHOT_EVERY)
    }

    /// Open (or create) a durable session in `dir`, writing a binary
    /// snapshot and truncating the WAL every `snapshot_every` mutations
    /// (`0` disables compaction). Recovery: load the snapshot if
    /// present, replay every committed WAL line, drop a torn final line
    /// (no trailing newline), and fail loudly on a damaged committed
    /// line.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: Config,
        snapshot_every: usize,
    ) -> Result<Session, SessionError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let base = if snap_path.exists() {
            decode_kb4(&std::fs::read(&snap_path)?)?
        } else {
            Vec::new()
        };
        let mut session = Self::from_axioms(base, config);

        let wal_path = dir.join(WAL_FILE);
        let mut declared: BTreeSet<DataRoleName> = BTreeSet::new();
        let mut replayed = 0usize;
        if wal_path.exists() {
            let bytes = std::fs::read(&wal_path)?;
            // A mutation is committed when its newline hit the disk; a
            // torn tail (no trailing newline) is dropped — even if it
            // happens to parse, it could be the prefix of a longer
            // statement, which must not replay as a different axiom.
            let committed = match bytes.iter().rposition(|&b| b == b'\n') {
                Some(last_nl) => &bytes[..=last_nl],
                None => &[][..],
            };
            let text = std::str::from_utf8(committed).map_err(|e| SessionError::Corrupt {
                line: 0,
                message: format!("non-UTF-8 committed bytes: {e}"),
            })?;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let corrupt = |message: String| SessionError::Corrupt {
                    line: lineno + 1,
                    message,
                };
                if let Some(decl) = line.strip_prefix("decl ") {
                    let names = decl
                        .strip_prefix("DataRole:")
                        .ok_or_else(|| corrupt(format!("unknown declaration {decl:?}")))?;
                    declared.extend(names.split_whitespace().map(DataRoleName::new));
                    continue;
                }
                let (op, stmt) = line
                    .split_once(' ')
                    .ok_or_else(|| corrupt(format!("unreadable op line {line:?}")))?;
                let ax = parse_wal_statement(stmt, &declared)
                    .map_err(|e| corrupt(format!("bad statement {stmt:?}: {e}")))?;
                match op {
                    "add" => session.apply_add(ax),
                    "retract" => {
                        if session.apply_retract(&ax).is_none() {
                            return Err(corrupt(format!("retract of absent axiom {stmt:?}")));
                        }
                    }
                    other => return Err(corrupt(format!("unknown op {other:?}"))),
                }
                replayed += 1;
            }
            // Truncate the torn tail so appends continue from the last
            // committed line.
            if committed.len() < bytes.len() {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&wal_path)?
                    .set_len(committed.len() as u64)?;
            }
        }
        session.wal = Some(Wal::append_to(wal_path, declared)?);
        session.snapshot_every = snapshot_every;
        session.mutations_since_snapshot = replayed;
        session.maybe_snapshot()?;
        Ok(session)
    }

    /// Add an axiom. Durable sessions log it to the WAL first; the
    /// in-memory state then updates with module-granular invalidation.
    pub fn add_axiom(&mut self, ax: Axiom4) -> Result<(), SessionError> {
        if let Some(wal) = &mut self.wal {
            wal.append("add", &ax)?;
        }
        self.apply_add(ax);
        self.maybe_snapshot()
    }

    /// Retract one occurrence of an axiom (the most recently added live
    /// occurrence, so add-then-retract is an exact undo). Returns
    /// `false` — and logs nothing — when no live occurrence exists.
    pub fn retract_axiom(&mut self, ax: &Axiom4) -> Result<bool, SessionError> {
        let Some(id) = self.find_live(ax) else {
            return Ok(false);
        };
        if let Some(wal) = &mut self.wal {
            wal.append("retract", ax)?;
        }
        let retracted = self.apply_retract_slot(id, ax.clone());
        debug_assert!(retracted);
        self.maybe_snapshot()?;
        Ok(true)
    }

    fn find_live(&self, ax: &Axiom4) -> Option<usize> {
        self.slots.iter().rposition(|s| s.as_ref() == Some(ax))
    }

    fn apply_add(&mut self, ax: Axiom4) {
        let id = self.extractor.push_axiom(&ax);
        debug_assert_eq!(id, self.slots.len());
        self.slots.push(Some(ax.clone()));
        self.live += 1;
        self.invalidate(Delta::Add(id), &ax);
    }

    fn apply_retract(&mut self, ax: &Axiom4) -> Option<usize> {
        let id = self.find_live(ax)?;
        self.apply_retract_slot(id, ax.clone());
        Some(id)
    }

    fn apply_retract_slot(&mut self, id: usize, ax: Axiom4) -> bool {
        if self.slots[id].take().is_none() {
            return false;
        }
        self.live -= 1;
        self.extractor.remove_axiom(id);
        self.invalidate(Delta::Retract(id), &ax);
        true
    }

    /// The delta-driven invalidation pass (soundness in module docs):
    /// drop dirty modules (folding their engines' stats into the
    /// session accumulator), the entailment-cache entries they
    /// answered, and the told-index rows the axiom touches.
    fn invalidate(&mut self, delta: Delta, ax: &Axiom4) {
        let mut s = Stats {
            mutations: 1,
            ..Stats::default()
        };
        let extractor = &self.extractor;
        let mut dirty: HashSet<Arc<BTreeSet<usize>>> = HashSet::new();
        recover(self.modules.get_mut()).retain(|_, slot| {
            let is_dirty = match delta {
                Delta::Add(id) => !extractor
                    .images(id)
                    .iter()
                    .all(|im| axiom_local(im, &slot.signature)),
                Delta::Retract(id) => slot.entry.key.contains(&id),
            };
            if is_dirty {
                if let Some((engine, adopted)) = slot.entry.engine.get() {
                    if !adopted {
                        s.absorb(&engine.stats());
                    }
                }
                dirty.insert(Arc::clone(&slot.entry.key));
            }
            !is_dirty
        });
        s.invalidated_modules += dirty.len() as u64;
        if !dirty.is_empty() {
            let removed = self
                .instance_cache
                .retain(|_, (_, key)| !dirty.contains(key));
            s.invalidated_entailments += removed as u64;
        }
        let id = match delta {
            Delta::Add(id) | Delta::Retract(id) => id,
        };
        let noted = match delta {
            Delta::Add(_) => self.told.note_added(id, ax),
            Delta::Retract(_) => self.told.note_retracted(id, ax),
        };
        match noted {
            Some(rows) => s.invalidated_told_rows += rows as u64,
            None => {
                // An equality merge moved the class partition itself:
                // rebuild the index over the live slots (ids preserved).
                s.invalidated_told_rows += self.told.memoized_rows() as u64;
                self.told = ToldIndex::build_indexed(
                    self.slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.as_ref().map(|ax| (i, ax))),
                );
            }
        }
        recover(self.stats.get_mut()).absorb(&s);
        self.mutations_since_snapshot += 1;
    }

    fn maybe_snapshot(&mut self) -> Result<(), SessionError> {
        let Some(wal) = &mut self.wal else {
            return Ok(());
        };
        if self.snapshot_every == 0 || self.mutations_since_snapshot < self.snapshot_every {
            return Ok(());
        }
        let snap_path = wal.path.with_file_name(SNAPSHOT_FILE);
        let tmp = wal.path.with_file_name(format!("{SNAPSHOT_FILE}.tmp"));
        std::fs::write(&tmp, encode_kb4(self.slots.iter().flatten()))?;
        std::fs::rename(&tmp, &snap_path)?;
        wal.truncate()?;
        self.mutations_since_snapshot = 0;
        Ok(())
    }

    /// Materialize the current live KB (slot order, tombstones skipped).
    pub fn kb(&self) -> KnowledgeBase4 {
        KnowledgeBase4::from_axioms(self.slots.iter().flatten().cloned())
    }

    /// Number of live axioms.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the live KB empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Accumulated pipeline statistics: the session counters (mutations,
    /// invalidations, extraction and Horn work, retired engines) plus
    /// every live module engine and the entailment-cache counters.
    pub fn stats(&self) -> Stats {
        let mut s = *lock_mutex(&self.stats);
        for slot in lock_mutex(&self.modules).values() {
            if let Some((engine, adopted)) = slot.entry.engine.get() {
                // Search counters of a shared engine are attributed to
                // the tenant that built it; adopters report their
                // adoption through `shared_module_hits` instead.
                if !adopted {
                    s.absorb(&engine.stats());
                }
            }
        }
        s.entailment_cache_hits += self.instance_cache.hits();
        s.entailment_cache_misses += self.instance_cache.misses();
        s
    }

    /// Number of distinct modules currently cached.
    pub fn cached_modules(&self) -> usize {
        lock_mutex(&self.modules).len()
    }

    // ------------------------------------------------------------------
    // Query pipeline (mirrors `Reasoner4` with module scoping + the
    // Horn path always routed through the session caches).
    // ------------------------------------------------------------------

    fn module_entry(&self, seed: &BTreeSet<SigAtom>) -> Arc<ModuleEntry> {
        let t0 = Instant::now();
        let module = self.extractor.extract(seed);
        let mut s = Stats {
            scoped_queries: 1,
            module_axioms: module.axioms.len() as u64,
            module_extraction_ns: t0.elapsed().as_nanos() as u64,
            ..Stats::default()
        };
        let mut modules = lock_mutex(&self.modules);
        let entry = match modules.get_mut(&module.axioms) {
            Some(slot) => {
                s.engine_cache_hits = 1;
                // Same axiom set reached from a different seed: widen the
                // dirty-test signature to the union (see `ModuleSlot`).
                slot.signature.extend(module.signature);
                Arc::clone(&slot.entry)
            }
            None => {
                s.engine_cache_misses = 1;
                let entry = Arc::new(ModuleEntry {
                    key: Arc::new(module.axioms.clone()),
                    skey: OnceLock::new(),
                    engine: OnceLock::new(),
                    horn: OnceLock::new(),
                    hardness: OnceLock::new(),
                });
                modules.insert(
                    module.axioms,
                    ModuleSlot {
                        signature: module.signature,
                        entry: Arc::clone(&entry),
                    },
                );
                entry
            }
        };
        drop(modules);
        lock_mutex(&self.stats).absorb(&s);
        entry
    }

    /// The module's structural key (content address), computed once.
    fn structural_key(&self, entry: &ModuleEntry) -> Arc<str> {
        Arc::clone(entry.skey.get_or_init(|| {
            serve::structural_key(entry.key.iter().flat_map(|&i| self.extractor.images(i)))
        }))
    }

    fn engine_of(&self, entry: &ModuleEntry) -> Arc<QueryEngine> {
        let (engine, _adopted) = entry.engine.get_or_init(|| {
            let build_kb = || {
                KnowledgeBase::from_axioms(
                    entry
                        .key
                        .iter()
                        .flat_map(|&i| self.extractor.images(i).iter().cloned()),
                )
            };
            match &self.shared {
                Some(shared) => {
                    let key = self.structural_key(entry);
                    let mut s = Stats::default();
                    let slot = match shared.engine(&key) {
                        Some(engine) => {
                            s.shared_module_hits = 1;
                            (engine, true)
                        }
                        None => {
                            // Build with the cache's *neutral* config so a
                            // per-tenant cancellation token never rides
                            // along into another tenant's queries.
                            s.shared_module_misses = 1;
                            let engine = Arc::new(QueryEngine::with_config(
                                &build_kb(),
                                shared.build_config().clone(),
                            ));
                            shared.publish_engine(key, Arc::clone(&engine));
                            (engine, false)
                        }
                    };
                    lock_mutex(&self.stats).absorb(&s);
                    slot
                }
                None => (
                    Arc::new(QueryEngine::with_config(
                        &build_kb(),
                        self.sub_config.clone(),
                    )),
                    false,
                ),
            }
        });
        Arc::clone(engine)
    }

    /// The module's Horn program (compiled once per entry), or `None`
    /// with a recorded fallback when its image leaves the Horn fragment.
    fn horn_of(&self, entry: &ModuleEntry) -> Option<Arc<HornProgram>> {
        let warm = entry.horn.get().is_some();
        let program = entry.horn.get_or_init(|| match &self.shared {
            Some(shared) => {
                let key = self.structural_key(entry);
                let mut s = Stats::default();
                let program = match shared.horn(&key) {
                    Some(hit) => {
                        s.shared_module_hits = 1;
                        hit
                    }
                    None => {
                        s.shared_module_misses = 1;
                        let program =
                            horn::compile(entry.key.iter().flat_map(|&i| self.extractor.images(i)))
                                .map(Arc::new);
                        shared.publish_horn(key, program.clone());
                        program
                    }
                };
                lock_mutex(&self.stats).absorb(&s);
                program
            }
            None => horn::compile(entry.key.iter().flat_map(|&i| self.extractor.images(i)))
                .map(Arc::new),
        });
        let mut s = Stats::default();
        if warm {
            s.horn_cache_hits = 1;
        } else {
            s.horn_cache_misses = 1;
            s.horn_clauses = program.as_ref().map_or(0, |p| p.clause_count());
        }
        if program.is_none() {
            s.horn_fallbacks = 1;
        }
        lock_mutex(&self.stats).absorb(&s);
        program.clone()
    }

    fn record_horn_answer(&self, rounds: u64) {
        lock_mutex(&self.stats).absorb(&Stats {
            horn_queries: 1,
            saturation_rounds: rounds,
            ..Stats::default()
        });
    }

    /// The module's static hardness score ([`crate::hardness`]),
    /// computed once per entry and shared cross-tenant under the
    /// structural key. Pure analysis — no engine is built and no search
    /// runs — so admission control can afford it on every request.
    fn hardness_of(&self, entry: &ModuleEntry) -> f64 {
        *entry.hardness.get_or_init(|| match &self.shared {
            Some(shared) => {
                let key = self.structural_key(entry);
                match shared.score(&key) {
                    Some(score) => score,
                    None => {
                        let score = self.analyze_entry(entry);
                        shared.publish_score(key, score);
                        score
                    }
                }
            }
            None => self.analyze_entry(entry),
        })
    }

    fn analyze_entry(&self, entry: &ModuleEntry) -> f64 {
        hardness::analyze_images(entry.key.iter().flat_map(|&i| self.extractor.images(i))).score
    }

    /// Predicted hardness of [`Session::query`]`(a, c)`: the maximum
    /// score over the modules the positive and negative probes extract.
    pub fn predicted_hardness(&self, a: &IndividualName, c: &Concept) -> f64 {
        let (tc, ntc) = {
            let mut tr = lock_mutex(&self.transformer);
            (tr.concept(c), tr.neg_concept(c))
        };
        let mut score = 0.0f64;
        for t in [&tc, &ntc] {
            let mut seed = BTreeSet::new();
            dataflow::classical_concept_atoms(t, &mut seed);
            seed.insert(SigAtom::Individual(a.clone()));
            let entry = self.module_entry(&seed);
            score = score.max(self.hardness_of(&entry));
        }
        score
    }

    /// Predicted hardness of [`Session::query_role`] — the maximum over
    /// its two entailment probes' modules.
    pub fn predicted_hardness_role(
        &self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> f64 {
        let pos = Axiom::RoleAssertion(r.with_suffix(transform::POS_SUFFIX), a.clone(), b.clone());
        let neg = Axiom::ConceptAssertion(
            a.clone(),
            Concept::all(
                RoleExpr::named(r.with_suffix(transform::EQ_SUFFIX)),
                Concept::one_of([b.clone()]).not(),
            ),
        );
        let mut score = 0.0f64;
        for ax in [&pos, &neg] {
            let mut seed = BTreeSet::new();
            dataflow::classical_axiom_atoms(ax, &mut seed);
            let entry = self.module_entry(&seed);
            score = score.max(self.hardness_of(&entry));
        }
        score
    }

    /// Predicted hardness of [`Session::entails`]`(ax)`: the module
    /// seeded by the union of the axiom's classical-image atoms — a
    /// superset of every per-probe seed `entails` uses, so the
    /// prediction can only err toward classifying heavy.
    pub fn predicted_hardness_axiom(&self, ax: &Axiom4) -> f64 {
        let images = lock_mutex(&self.transformer).axiom(ax);
        let mut seed = BTreeSet::new();
        for im in &images {
            dataflow::classical_axiom_atoms(im, &mut seed);
        }
        let entry = self.module_entry(&seed);
        self.hardness_of(&entry)
    }

    /// Predicted hardness of [`Session::is_satisfiable`] (the ∅-seed
    /// module — the whole non-`⊤`-local part of the KB).
    pub fn predicted_hardness_check(&self) -> f64 {
        let entry = self.module_entry(&BTreeSet::new());
        self.hardness_of(&entry)
    }

    /// Instance check `K̄ ⊨ a : tc` through the module caches; returns
    /// the verdict and the answering module key (the entailment-cache
    /// tag).
    fn engine_instance(
        &self,
        a: &IndividualName,
        tc: &Concept,
    ) -> Result<(bool, Arc<BTreeSet<usize>>), ReasonerError> {
        let mut seed = BTreeSet::new();
        dataflow::classical_concept_atoms(tc, &mut seed);
        seed.insert(SigAtom::Individual(a.clone()));
        let entry = self.module_entry(&seed);
        if let Some(hit) = self.shared_row(&entry, || format!("i\u{1}{a:?}\u{1}{tc:?}")) {
            return Ok((hit, Arc::clone(&entry.key)));
        }
        if self.config.horn_path {
            if let Concept::Atomic(goal) = tc {
                if let Some(program) = self.horn_of(&entry) {
                    let answer = program.is_instance(a, goal);
                    self.record_horn_answer(answer.rounds);
                    self.publish_row(&entry, format!("i\u{1}{a:?}\u{1}{tc:?}"), answer.holds);
                    return Ok((answer.holds, Arc::clone(&entry.key)));
                }
            }
        }
        let verdict = self.engine_of(&entry).is_instance_of(a, tc)?;
        self.publish_row(&entry, format!("i\u{1}{a:?}\u{1}{tc:?}"), verdict);
        Ok((verdict, Arc::clone(&entry.key)))
    }

    /// Cross-tenant verdict row lookup under the module's structural
    /// key; `None` when no shared cache is wired or the row is cold.
    fn shared_row(&self, entry: &ModuleEntry, probe: impl FnOnce() -> String) -> Option<bool> {
        let shared = self.shared.as_ref()?;
        let hit = shared.row(&(self.structural_key(entry), probe()));
        let mut s = Stats::default();
        match hit {
            Some(_) => s.shared_row_hits = 1,
            None => s.shared_row_misses = 1,
        }
        lock_mutex(&self.stats).absorb(&s);
        hit
    }

    /// Publish a computed verdict row for identical modules elsewhere.
    fn publish_row(&self, entry: &ModuleEntry, probe: String, verdict: bool) {
        if let Some(shared) = &self.shared {
            shared.publish_row((self.structural_key(entry), probe), verdict);
        }
    }

    fn cached_instance(&self, a: &IndividualName, tc: &Concept) -> Result<bool, ReasonerError> {
        let key = (a.clone(), tc.clone());
        if let Some((hit, _)) = self.instance_cache.get(&key) {
            return Ok(hit);
        }
        let (answer, module_key) = self.engine_instance(a, tc)?;
        self.instance_cache.insert(key, (answer, module_key));
        Ok(answer)
    }

    fn engine_concept_sat(&self, test: &Concept) -> Result<bool, ReasonerError> {
        let mut seed = BTreeSet::new();
        dataflow::classical_concept_atoms(test, &mut seed);
        let entry = self.module_entry(&seed);
        if let Some(hit) = self.shared_row(&entry, || format!("s\u{1}{test:?}")) {
            return Ok(hit);
        }
        if self.config.horn_path {
            if let Some((sub, sup)) = subsumption_probe(test) {
                if let Some(program) = self.horn_of(&entry) {
                    let answer = program.subsumes(sub, sup);
                    self.record_horn_answer(answer.rounds);
                    self.publish_row(&entry, format!("s\u{1}{test:?}"), !answer.holds);
                    return Ok(!answer.holds);
                }
            }
        }
        let verdict = self.engine_of(&entry).is_concept_satisfiable(test)?;
        self.publish_row(&entry, format!("s\u{1}{test:?}"), verdict);
        Ok(verdict)
    }

    fn engine_entails(&self, ax: &Axiom) -> Result<bool, ReasonerError> {
        let mut seed = BTreeSet::new();
        dataflow::classical_axiom_atoms(ax, &mut seed);
        let entry = self.module_entry(&seed);
        if let Some(hit) = self.shared_row(&entry, || format!("e\u{1}{ax:?}")) {
            return Ok(hit);
        }
        let verdict = self.engine_of(&entry).entails(ax)?;
        self.publish_row(&entry, format!("e\u{1}{ax:?}"), verdict);
        Ok(verdict)
    }

    /// Is the (current) four-valued KB satisfiable?
    pub fn is_satisfiable(&self) -> Result<bool, ReasonerError> {
        let entry = self.module_entry(&BTreeSet::new());
        if self.config.horn_path && self.horn_of(&entry).is_some() {
            // A Horn ∅-seed module is always satisfiable (the
            // fragment excludes every construct with classical bite).
            self.record_horn_answer(0);
            return Ok(true);
        }
        self.engine_of(&entry).is_consistent()
    }

    /// Is there information supporting `a : C`?
    pub fn has_positive_info(
        &self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        if let Concept::Atomic(name) = c {
            if self.told.verdict(a, name).0 {
                return Ok(true);
            }
        }
        let tc = lock_mutex(&self.transformer).concept(c);
        self.cached_instance(a, &tc)
    }

    /// Is there information *against* `a : C`?
    pub fn has_negative_info(
        &self,
        a: &IndividualName,
        c: &Concept,
    ) -> Result<bool, ReasonerError> {
        if let Concept::Atomic(name) = c {
            if self.told.verdict(a, name).1 {
                return Ok(true);
            }
        }
        let tc = lock_mutex(&self.transformer).neg_concept(c);
        self.cached_instance(a, &tc)
    }

    /// The four-valued answer about a membership.
    pub fn query(&self, a: &IndividualName, c: &Concept) -> Result<TruthValue, ReasonerError> {
        Ok(TruthValue::from_bits(
            self.has_positive_info(a, c)?,
            self.has_negative_info(a, c)?,
        ))
    }

    /// The four-valued answer about a role membership.
    pub fn query_role(
        &self,
        r: &RoleName,
        a: &IndividualName,
        b: &IndividualName,
    ) -> Result<TruthValue, ReasonerError> {
        let pos = self.engine_entails(&Axiom::RoleAssertion(
            r.with_suffix(transform::POS_SUFFIX),
            a.clone(),
            b.clone(),
        ))?;
        let neg = self.engine_entails(&Axiom::ConceptAssertion(
            a.clone(),
            Concept::all(
                RoleExpr::named(r.with_suffix(transform::EQ_SUFFIX)),
                Concept::one_of([b.clone()]).not(),
            ),
        ))?;
        Ok(TruthValue::from_bits(pos, neg))
    }

    /// Does the current KB four-valued-entail the axiom? (Corollary 7
    /// for inclusions, image entailment otherwise — the session twin of
    /// [`crate::Reasoner4::entails`].)
    pub fn entails(&self, ax: &Axiom4) -> Result<bool, ReasonerError> {
        match ax {
            Axiom4::ConceptInclusion(kind, c, d) => {
                if *kind == InclusionKind::Internal {
                    if let (Concept::Atomic(a), Concept::Atomic(b)) = (c, d) {
                        if self.told.told_subsumes(a, b) {
                            return Ok(true);
                        }
                    }
                }
                let (cbar, neg_cbar, dbar, neg_dbar) = {
                    let mut tr = lock_mutex(&self.transformer);
                    (
                        tr.concept(c),
                        tr.neg_concept(c),
                        tr.concept(d),
                        tr.neg_concept(d),
                    )
                };
                match kind {
                    InclusionKind::Material => {
                        let test = neg_cbar.not().and(dbar.not());
                        Ok(!self.engine_concept_sat(&test)?)
                    }
                    InclusionKind::Internal => {
                        let test = cbar.and(dbar.not());
                        Ok(!self.engine_concept_sat(&test)?)
                    }
                    InclusionKind::Strong => {
                        let fwd = cbar.and(dbar.not());
                        let bwd = neg_dbar.and(neg_cbar.not());
                        Ok(!self.engine_concept_sat(&fwd)? && !self.engine_concept_sat(&bwd)?)
                    }
                }
            }
            other => {
                let images = lock_mutex(&self.transformer).axiom(other);
                for classical_ax in images {
                    if !self.engine_entails(&classical_ax)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

// Queries are `&self` over interior mutexes, so sessions can serve
// scoped worker threads just like `Reasoner4`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};

/// The append-side of the write-ahead log.
struct Wal {
    path: PathBuf,
    file: std::fs::File,
    /// Data roles already declared in the current WAL generation —
    /// axiom statements mentioning datatype roles only re-parse under a
    /// `DataRole:` declaration, so the log carries its own.
    declared: BTreeSet<DataRoleName>,
}

impl Wal {
    fn append_to(path: PathBuf, declared: BTreeSet<DataRoleName>) -> Result<Wal, SessionError> {
        let fresh = !path.exists() || std::fs::metadata(&path)?.len() == 0;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if fresh {
            writeln!(file, "{WAL_HEADER}")?;
        }
        Ok(Wal {
            path,
            file,
            declared,
        })
    }

    fn append(&mut self, op: &str, ax: &Axiom4) -> Result<(), SessionError> {
        let sig = KnowledgeBase4::from_axioms([ax.clone()]).signature();
        let fresh: Vec<&DataRoleName> = sig
            .data_roles
            .iter()
            .filter(|u| !self.declared.contains(*u))
            .collect();
        let mut out = String::new();
        if !fresh.is_empty() {
            out.push_str("decl DataRole:");
            for u in &fresh {
                out.push(' ');
                out.push_str(u.as_str());
            }
            out.push('\n');
        }
        out.push_str(op);
        out.push(' ');
        out.push_str(&print_axiom4(ax));
        out.push('\n');
        // One write per mutation: the line (with its newline) reaches
        // the OS atomically enough for process-crash recovery; the
        // replay side drops any torn tail.
        self.file.write_all(out.as_bytes())?;
        self.declared.extend(sig.data_roles.iter().cloned());
        Ok(())
    }

    /// Start a fresh WAL generation (after a snapshot compaction).
    fn truncate(&mut self) -> Result<(), SessionError> {
        self.file.set_len(0)?;
        writeln!(self.file, "{WAL_HEADER}")?;
        self.declared.clear();
        Ok(())
    }
}

/// Parse one WAL axiom statement under the accumulated data-role
/// declarations.
fn parse_wal_statement(stmt: &str, declared: &BTreeSet<DataRoleName>) -> Result<Axiom4, String> {
    let mut src = String::new();
    if !declared.is_empty() {
        src.push_str("DataRole:");
        for u in declared {
            src.push(' ');
            src.push_str(u.as_str());
        }
        src.push('\n');
    }
    src.push_str(stmt);
    let kb = parse_kb4(&src).map_err(|e| e.to_string())?;
    match kb.axioms() {
        [ax] => Ok(ax.clone()),
        other => Err(format!("expected one axiom, parsed {}", other.len())),
    }
}

// ----------------------------------------------------------------------
// Binary KB4 snapshots, framed with the `dl::snapshot` wire primitives.
// ----------------------------------------------------------------------

const KB4_MAGIC: &[u8; 4] = b"DLK4";
const KB4_VERSION: u8 = 1;

fn put_kind(buf: &mut Vec<u8>, kind: InclusionKind) {
    buf.push(match kind {
        InclusionKind::Material => 0,
        InclusionKind::Internal => 1,
        InclusionKind::Strong => 2,
    });
}

fn get_kind(buf: &mut &[u8]) -> Result<InclusionKind, SnapshotError> {
    match wire::get_u8(buf)? {
        0 => Ok(InclusionKind::Material),
        1 => Ok(InclusionKind::Internal),
        2 => Ok(InclusionKind::Strong),
        t => Err(SnapshotError::BadTag("inclusion kind", t)),
    }
}

/// Serialize a four-valued axiom sequence to the `DLK4` snapshot format.
pub fn encode_kb4<'a>(axioms: impl IntoIterator<Item = &'a Axiom4>) -> Vec<u8> {
    let axioms: Vec<&Axiom4> = axioms.into_iter().collect();
    let mut buf = Vec::with_capacity(64 + axioms.len() * 16);
    buf.extend_from_slice(KB4_MAGIC);
    buf.push(KB4_VERSION);
    wire::put_u32(&mut buf, axioms.len() as u32);
    for ax in axioms {
        match ax {
            Axiom4::ConceptInclusion(k, c, d) => {
                buf.push(0);
                put_kind(&mut buf, *k);
                wire::put_concept(&mut buf, c);
                wire::put_concept(&mut buf, d);
            }
            Axiom4::RoleInclusion(k, r, s) => {
                buf.push(1);
                put_kind(&mut buf, *k);
                wire::put_role(&mut buf, r);
                wire::put_role(&mut buf, s);
            }
            Axiom4::DataRoleInclusion(k, u, v) => {
                buf.push(2);
                put_kind(&mut buf, *k);
                wire::put_str(&mut buf, u.as_str());
                wire::put_str(&mut buf, v.as_str());
            }
            Axiom4::Transitive(r) => {
                buf.push(3);
                wire::put_str(&mut buf, r.as_str());
            }
            Axiom4::ConceptAssertion(a, c) => {
                buf.push(4);
                wire::put_str(&mut buf, a.as_str());
                wire::put_concept(&mut buf, c);
            }
            Axiom4::RoleAssertion(r, a, b) => {
                buf.push(5);
                wire::put_str(&mut buf, r.as_str());
                wire::put_str(&mut buf, a.as_str());
                wire::put_str(&mut buf, b.as_str());
            }
            Axiom4::NegativeRoleAssertion(r, a, b) => {
                buf.push(6);
                wire::put_str(&mut buf, r.as_str());
                wire::put_str(&mut buf, a.as_str());
                wire::put_str(&mut buf, b.as_str());
            }
            Axiom4::DataAssertion(u, a, v) => {
                buf.push(7);
                wire::put_str(&mut buf, u.as_str());
                wire::put_str(&mut buf, a.as_str());
                wire::put_value(&mut buf, v);
            }
            Axiom4::SameIndividual(a, b) => {
                buf.push(8);
                wire::put_str(&mut buf, a.as_str());
                wire::put_str(&mut buf, b.as_str());
            }
            Axiom4::DifferentIndividuals(a, b) => {
                buf.push(9);
                wire::put_str(&mut buf, a.as_str());
                wire::put_str(&mut buf, b.as_str());
            }
        }
    }
    buf
}

/// Deserialize a `DLK4` snapshot.
pub fn decode_kb4(mut buf: &[u8]) -> Result<Vec<Axiom4>, SnapshotError> {
    if buf.len() < 4 {
        return Err(SnapshotError::UnexpectedEof);
    }
    let (magic, rest) = buf.split_at(4);
    buf = rest;
    if magic != KB4_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = wire::get_u8(&mut buf)?;
    if version != KB4_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let count = wire::get_u32(&mut buf)?;
    let mut axioms = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let ax = match wire::get_u8(&mut buf)? {
            0 => {
                let k = get_kind(&mut buf)?;
                let c = wire::get_concept(&mut buf)?;
                let d = wire::get_concept(&mut buf)?;
                Axiom4::ConceptInclusion(k, c, d)
            }
            1 => {
                let k = get_kind(&mut buf)?;
                let r = wire::get_role(&mut buf)?;
                let s = wire::get_role(&mut buf)?;
                Axiom4::RoleInclusion(k, r, s)
            }
            2 => {
                let k = get_kind(&mut buf)?;
                let u = DataRoleName::new(wire::get_str(&mut buf)?);
                let v = DataRoleName::new(wire::get_str(&mut buf)?);
                Axiom4::DataRoleInclusion(k, u, v)
            }
            3 => Axiom4::Transitive(RoleName::new(wire::get_str(&mut buf)?)),
            4 => {
                let a = IndividualName::new(wire::get_str(&mut buf)?);
                Axiom4::ConceptAssertion(a, wire::get_concept(&mut buf)?)
            }
            tag @ (5 | 6) => {
                let r = RoleName::new(wire::get_str(&mut buf)?);
                let a = IndividualName::new(wire::get_str(&mut buf)?);
                let b = IndividualName::new(wire::get_str(&mut buf)?);
                if tag == 5 {
                    Axiom4::RoleAssertion(r, a, b)
                } else {
                    Axiom4::NegativeRoleAssertion(r, a, b)
                }
            }
            7 => {
                let u = DataRoleName::new(wire::get_str(&mut buf)?);
                let a = IndividualName::new(wire::get_str(&mut buf)?);
                Axiom4::DataAssertion(u, a, wire::get_value(&mut buf)?)
            }
            8 => {
                let a = IndividualName::new(wire::get_str(&mut buf)?);
                let b = IndividualName::new(wire::get_str(&mut buf)?);
                Axiom4::SameIndividual(a, b)
            }
            9 => {
                let a = IndividualName::new(wire::get_str(&mut buf)?);
                let b = IndividualName::new(wire::get_str(&mut buf)?);
                Axiom4::DifferentIndividuals(a, b)
            }
            t => return Err(SnapshotError::BadTag("axiom4", t)),
        };
        axioms.push(ax);
    }
    Ok(axioms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reasoner4;
    use dl::DataValue;

    fn ind(s: &str) -> IndividualName {
        IndividualName::new(s)
    }

    fn atom(s: &str) -> Concept {
        Concept::atomic(s)
    }

    /// A fresh temp directory for one durable-session test.
    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shoin4-incremental-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn island(n: usize) -> Vec<Axiom4> {
        let a = format!("A{n}");
        let b = format!("B{n}");
        let x = format!("x{n}");
        vec![
            Axiom4::ConceptInclusion(InclusionKind::Internal, atom(&a), atom(&b)),
            Axiom4::ConceptAssertion(ind(&x), atom(&a)),
        ]
    }

    #[test]
    fn session_tracks_a_fresh_reasoner_through_mutations() {
        let mut session = Session::new(&KnowledgeBase4::new(), Config::default());
        let mut axioms: Vec<Axiom4> = Vec::new();
        let trace: Vec<Axiom4> = island(0).into_iter().chain(island(1)).collect();
        for ax in trace {
            session.add_axiom(ax.clone()).unwrap();
            axioms.push(ax);
        }
        let extra = Axiom4::ConceptAssertion(ind("x0"), atom("B1").not());
        session.add_axiom(extra.clone()).unwrap();
        axioms.push(extra.clone());

        let check = |session: &Session, axioms: &[Axiom4]| {
            let fresh = Reasoner4::new(&KnowledgeBase4::from_axioms(axioms.iter().cloned()));
            for i in ["x0", "x1"] {
                for c in ["A0", "B0", "A1", "B1"] {
                    let (a, c) = (ind(i), atom(c));
                    assert_eq!(
                        session.query(&a, &c).unwrap(),
                        fresh.query(&a, &c).unwrap(),
                        "diverged on {i}:{c:?} over {axioms:?}"
                    );
                }
            }
            assert_eq!(
                session.is_satisfiable().unwrap(),
                fresh.is_satisfiable().unwrap()
            );
        };
        check(&session, &axioms);

        assert!(session.retract_axiom(&extra).unwrap());
        axioms.retain(|ax| ax != &extra);
        check(&session, &axioms);

        // Retracting an absent axiom is a logged-nothing no-op.
        assert!(!session.retract_axiom(&extra).unwrap());
        assert_eq!(session.len(), axioms.len());
        check(&session, &axioms);
    }

    #[test]
    fn invalidation_is_module_granular() {
        let kb = KnowledgeBase4::from_axioms(island(0).into_iter().chain(island(1)));
        let mut session = Session::new(&kb, Config::default());
        // Compound goals skip the told fast path and seed real modules.
        let both0 = atom("A0").and(atom("B0"));
        let both1 = atom("A1").and(atom("B1"));
        assert!(session.query(&ind("x0"), &both0).unwrap().has_true_info());
        assert!(session.query(&ind("x1"), &both1).unwrap().has_true_info());
        let warm = session.cached_modules();
        assert!(warm >= 2, "expected distinct island modules, got {warm}");

        // A mutation inside island 0 must not evict island 1's module.
        session
            .add_axiom(Axiom4::ConceptAssertion(ind("y0"), atom("A0")))
            .unwrap();
        let stats = session.stats();
        assert_eq!(stats.mutations, 1);
        assert!(
            stats.invalidated_modules < warm as u64,
            "delta in island 0 evicted all {warm} modules"
        );
        assert!(session.query(&ind("y0"), &both0).unwrap().has_true_info());
        assert!(session.query(&ind("x1"), &both1).unwrap().has_true_info());
    }

    #[test]
    fn entailment_cache_entries_die_with_their_module() {
        let kb = KnowledgeBase4::from_axioms(island(0));
        let mut session = Session::new(&kb, Config::default());
        assert!(!session
            .query(&ind("x0"), &atom("C0"))
            .unwrap()
            .has_true_info());
        session
            .add_axiom(Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                atom("B0"),
                atom("C0"),
            ))
            .unwrap();
        assert!(
            session
                .query(&ind("x0"), &atom("C0"))
                .unwrap()
                .has_true_info(),
            "stale cached verdict survived an invalidating add"
        );
        session
            .retract_axiom(&Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                atom("B0"),
                atom("C0"),
            ))
            .unwrap()
            .then_some(())
            .unwrap();
        assert!(!session
            .query(&ind("x0"), &atom("C0"))
            .unwrap()
            .has_true_info());
        assert!(session.stats().invalidated_entailments > 0);
    }

    #[test]
    fn kb4_snapshot_roundtrips_every_axiom_shape() {
        let axioms = vec![
            Axiom4::ConceptInclusion(InclusionKind::Material, atom("A"), atom("B").not()),
            Axiom4::ConceptInclusion(
                InclusionKind::Strong,
                Concept::some(dl::axiom::RoleExpr::named(RoleName::new("r")), atom("A")),
                atom("B"),
            ),
            Axiom4::RoleInclusion(
                InclusionKind::Internal,
                dl::axiom::RoleExpr::named(RoleName::new("r")),
                dl::axiom::RoleExpr::named(RoleName::new("s")).inverse(),
            ),
            Axiom4::DataRoleInclusion(
                InclusionKind::Material,
                DataRoleName::new("u"),
                DataRoleName::new("v"),
            ),
            Axiom4::Transitive(RoleName::new("r")),
            Axiom4::ConceptAssertion(ind("a"), atom("A").and(atom("B"))),
            Axiom4::RoleAssertion(RoleName::new("r"), ind("a"), ind("b")),
            Axiom4::NegativeRoleAssertion(RoleName::new("r"), ind("a"), ind("b")),
            Axiom4::DataAssertion(DataRoleName::new("u"), ind("a"), DataValue::Integer(42)),
            Axiom4::SameIndividual(ind("a"), ind("b")),
            Axiom4::DifferentIndividuals(ind("a"), ind("b")),
        ];
        let decoded = decode_kb4(&encode_kb4(&axioms)).unwrap();
        assert_eq!(decoded, axioms);
        assert!(matches!(decode_kb4(b"XXXX"), Err(SnapshotError::BadMagic)));
        assert!(matches!(
            decode_kb4(&encode_kb4(&axioms)[..10]),
            Err(SnapshotError::UnexpectedEof)
        ));
    }

    #[test]
    fn durable_session_replays_its_wal_on_reopen() {
        let dir = scratch("replay");
        {
            let mut s = Session::open(&dir, Config::default()).unwrap();
            for ax in island(0) {
                s.add_axiom(ax).unwrap();
            }
            s.add_axiom(Axiom4::DataAssertion(
                DataRoleName::new("age"),
                ind("x0"),
                DataValue::Integer(7),
            ))
            .unwrap();
            s.retract_axiom(&Axiom4::ConceptAssertion(ind("x0"), atom("A0")))
                .unwrap()
                .then_some(())
                .unwrap();
            assert_eq!(s.len(), 2);
        }
        let reopened = Session::open(&dir, Config::default()).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(!reopened
            .query(&ind("x0"), &atom("B0"))
            .unwrap()
            .has_true_info());
        let kb = reopened.kb();
        assert!(kb.axioms().contains(&Axiom4::DataAssertion(
            DataRoleName::new("age"),
            ind("x0"),
            DataValue::Integer(7),
        )));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_dropped_and_truncated() {
        let dir = scratch("torn");
        {
            let mut s = Session::open(&dir, Config::default()).unwrap();
            for ax in island(0) {
                s.add_axiom(ax).unwrap();
            }
        }
        let wal = dir.join(WAL_FILE);
        let committed = std::fs::metadata(&wal).unwrap().len();
        // Simulate a crash mid-append: a prefix of a statement, no newline.
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(b"add x9 : A9 and (B9 o").unwrap();
        drop(f);

        let reopened = Session::open(&dir, Config::default()).unwrap();
        assert_eq!(reopened.len(), 2, "torn tail replayed");
        drop(reopened);
        assert_eq!(
            std::fs::metadata(&wal).unwrap().len(),
            committed,
            "torn tail not truncated away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_committed_wal_line_is_an_error_not_a_skip() {
        let dir = scratch("corrupt");
        {
            let mut s = Session::open(&dir, Config::default()).unwrap();
            s.add_axiom(Axiom4::ConceptAssertion(ind("x"), atom("A")))
                .unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(b"frobnicate x : A\n").unwrap();
        drop(f);
        match Session::open(&dir, Config::default()) {
            Err(SessionError::Corrupt { line, .. }) => assert_eq!(line, 3),
            Err(other) => panic!("expected corruption error, got {other:?}"),
            Ok(_) => panic!("corrupt wal opened without error"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compaction_truncates_the_wal_and_survives_reopen() {
        let dir = scratch("compact");
        {
            let mut s = Session::open_with(&dir, Config::default(), 3).unwrap();
            for ax in island(0).into_iter().chain(island(1)) {
                s.add_axiom(ax).unwrap();
            }
        }
        let snap = dir.join(SNAPSHOT_FILE);
        assert!(snap.exists(), "no snapshot written after 4 mutations");
        let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(
            wal_len <= (WAL_HEADER.len() + 1 + 80) as u64,
            "wal not compacted: {wal_len} bytes"
        );
        let reopened = Session::open_with(&dir, Config::default(), 3).unwrap();
        assert_eq!(reopened.len(), 4);
        assert!(reopened
            .query(&ind("x1"), &atom("B1"))
            .unwrap()
            .has_true_info());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_individual_mutations_rebuild_the_told_index() {
        let kb = KnowledgeBase4::from_axioms([
            Axiom4::ConceptAssertion(ind("a"), atom("A")),
            Axiom4::ConceptInclusion(InclusionKind::Internal, atom("A"), atom("B")),
        ]);
        let mut session = Session::new(&kb, Config::default());
        assert!(!session
            .query(&ind("b"), &atom("B"))
            .unwrap()
            .has_true_info());
        session
            .add_axiom(Axiom4::SameIndividual(ind("a"), ind("b")))
            .unwrap();
        assert!(
            session
                .query(&ind("b"), &atom("B"))
                .unwrap()
                .has_true_info(),
            "equality merge not reflected after add"
        );
        session
            .retract_axiom(&Axiom4::SameIndividual(ind("a"), ind("b")))
            .unwrap()
            .then_some(())
            .unwrap();
        assert!(!session
            .query(&ind("b"), &atom("B"))
            .unwrap()
            .has_true_info());
    }
}
