//! Ontology analysis on top of the paraconsistent reasoner:
//! contradiction diagnosis and four-valued classification.
//!
//! Because SHOIN(D)4 keeps inconsistent KBs non-trivial, it can do what a
//! classical reasoner cannot: *survey* a contradictory ontology — which
//! facts are contested (`⊤`), which are clean, how contaminated the KB is
//! overall. This is the practical payoff of "the inconsistencies are
//! localized" (§5).
//!
//! Both drivers are batch workloads over independent queries, so they
//! fan out across the reasoner's worker threads (see
//! [`crate::reasoner4::QueryOptions::jobs`]); results are assembled in
//! grid order and are bit-identical to a sequential run.

use crate::kb4::KnowledgeBase4;
use crate::reasoner4::Reasoner4;
use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use fourval::TruthValue;
use std::collections::BTreeMap;
use tableau::ReasonerError;

/// A survey of the KB's atomic facts: every individual × atomic-concept
/// pair in the signature, with its four-valued verdict.
#[derive(Debug, Clone, Default)]
pub struct ContradictionReport {
    /// Facts with contradictory information (`⊤`).
    pub contested: Vec<(IndividualName, ConceptName)>,
    /// Facts with positive-only information (`t`).
    pub asserted: Vec<(IndividualName, ConceptName)>,
    /// Facts with negative-only information (`f`).
    pub denied: Vec<(IndividualName, ConceptName)>,
    /// Number of pairs with no information (`⊥`).
    pub unknown: usize,
}

impl ContradictionReport {
    /// Total pairs surveyed.
    pub fn total(&self) -> usize {
        self.contested.len() + self.asserted.len() + self.denied.len() + self.unknown
    }

    /// Fraction of surveyed facts that are contested — a simple
    /// inconsistency degree in `[0, 1]`.
    pub fn contamination(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.contested.len() as f64 / self.total() as f64
    }
}

/// Survey every individual × atomic concept of the KB's signature.
pub fn contradiction_report(
    reasoner: &Reasoner4,
    kb: &KnowledgeBase4,
) -> Result<ContradictionReport, ReasonerError> {
    contradiction_report_seeded(reasoner, kb, &[])
}

/// [`contradiction_report`] with a fast path: `seeded` pairs are facts
/// already *known* to be contested — typically the syntactically-certain
/// findings of a static pass (`ontolint::certain_contested_facts`) — so
/// the survey records them as `⊤` without running the two tableau
/// entailment queries each would otherwise cost.
///
/// Seeded pairs outside the signature are ignored; the total therefore
/// stays `|individuals| × |concepts|`. Soundness is the caller's promise:
/// a pair that is not in fact contested in every model would corrupt the
/// report (the linter's `Error` contract is exactly that promise).
pub fn contradiction_report_seeded(
    reasoner: &Reasoner4,
    kb: &KnowledgeBase4,
    seeded: &[(IndividualName, ConceptName)],
) -> Result<ContradictionReport, ReasonerError> {
    let sig = kb.signature();
    let seeded: std::collections::BTreeSet<(&IndividualName, &ConceptName)> =
        seeded.iter().map(|(a, c)| (a, c)).collect();
    // Collect the un-seeded grid cells, in grid order, and answer them as
    // one batch (striped over worker threads).
    let mut queries = Vec::new();
    for a in &sig.individuals {
        for c in &sig.concepts {
            if !seeded.contains(&(a, c)) {
                queries.push((a.clone(), Concept::atomic(c.as_str())));
            }
        }
    }
    let answers = reasoner.query_batch(&queries)?;
    let mut report = ContradictionReport::default();
    let mut next = answers.into_iter();
    for a in &sig.individuals {
        for c in &sig.concepts {
            if seeded.contains(&(a, c)) {
                report.contested.push((a.clone(), c.clone()));
                continue;
            }
            match next.next().expect("one answer per query") {
                TruthValue::Both => report.contested.push((a.clone(), c.clone())),
                TruthValue::True => report.asserted.push((a.clone(), c.clone())),
                TruthValue::False => report.denied.push((a.clone(), c.clone())),
                TruthValue::Neither => report.unknown += 1,
            }
        }
    }
    Ok(report)
}

/// Four-valued classification: the internal-inclusion (`⊏`) taxonomy over
/// the named concepts, computed via Corollary 7. Returns, for each
/// concept, its (reflexive) set of super-concepts. Rows are computed on
/// worker threads; the result does not depend on the thread count.
pub fn classify4(
    reasoner: &Reasoner4,
    kb: &KnowledgeBase4,
) -> Result<BTreeMap<ConceptName, Vec<ConceptName>>, ReasonerError> {
    let sig = kb.signature();
    let names: Vec<ConceptName> = sig.concepts.into_iter().collect();
    let row = |a: &ConceptName| -> Result<Vec<ConceptName>, ReasonerError> {
        let mut supers = Vec::new();
        for b in &names {
            let ax = crate::kb4::Axiom4::ConceptInclusion(
                crate::inclusion::InclusionKind::Internal,
                Concept::atomic(a.as_str()),
                Concept::atomic(b.as_str()),
            );
            if reasoner.entails(&ax)? {
                supers.push(b.clone());
            }
        }
        Ok(supers)
    };
    let jobs = reasoner.options().effective_jobs().min(names.len().max(1));
    let mut out = BTreeMap::new();
    if jobs <= 1 {
        for a in &names {
            out.insert(a.clone(), row(a)?);
        }
        return Ok(out);
    }
    let indexed: Vec<(usize, Result<Vec<ConceptName>, ReasonerError>)> =
        std::thread::scope(|scope| {
            let row = &row;
            let names = &names;
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    scope.spawn(move || {
                        names
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(jobs)
                            .map(|(i, a)| (i, row(a)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("classify worker panicked"))
                .collect()
        });
    let mut first_err: Option<(usize, ReasonerError)> = None;
    for (i, r) in indexed {
        match r {
            Ok(supers) => {
                out.insert(names[i].clone(), supers);
            }
            Err(e) => {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kb4;
    use crate::reasoner4::QueryOptions;
    use tableau::Config;

    #[test]
    fn report_splits_facts_by_verdict() {
        let kb = parse_kb4(
            "A SubClassOf B
             x : A
             x : not A
             y : B
             z : not B",
        )
        .unwrap();
        let r = Reasoner4::new(&kb);
        let report = contradiction_report(&r, &kb).unwrap();
        // x:A is contested; x:B is asserted (via inclusion from the
        // positive half); y:B asserted; z:B denied.
        assert!(report
            .contested
            .contains(&(IndividualName::new("x"), ConceptName::new("A"))));
        assert!(report
            .asserted
            .contains(&(IndividualName::new("x"), ConceptName::new("B"))));
        assert!(report
            .asserted
            .contains(&(IndividualName::new("y"), ConceptName::new("B"))));
        assert!(report
            .denied
            .contains(&(IndividualName::new("z"), ConceptName::new("B"))));
        assert_eq!(report.total(), 6); // 3 individuals × 2 concepts
        assert!(report.contamination() > 0.0 && report.contamination() < 0.5);
    }

    #[test]
    fn clean_kb_has_zero_contamination() {
        let kb = parse_kb4("A SubClassOf B\nx : A").unwrap();
        let r = Reasoner4::new(&kb);
        let report = contradiction_report(&r, &kb).unwrap();
        assert!(report.contested.is_empty());
        assert_eq!(report.contamination(), 0.0);
    }

    #[test]
    fn classification_respects_internal_taxonomy() {
        let kb = parse_kb4(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person
             Nurse SubClassOf Person",
        )
        .unwrap();
        let r = Reasoner4::new(&kb);
        let taxonomy = classify4(&r, &kb).unwrap();
        let supers = &taxonomy[&ConceptName::new("Surgeon")];
        assert!(supers.contains(&ConceptName::new("Doctor")));
        assert!(supers.contains(&ConceptName::new("Person")));
        assert!(supers.contains(&ConceptName::new("Surgeon")));
        assert!(!taxonomy[&ConceptName::new("Nurse")].contains(&ConceptName::new("Doctor")));
    }

    #[test]
    fn contamination_edge_cases() {
        // Empty KB: nothing surveyed, contamination well-defined at 0.
        let kb = KnowledgeBase4::new();
        let r = Reasoner4::new(&kb);
        let report = contradiction_report(&r, &kb).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(report.contamination(), 0.0);

        // Individuals but no concepts (role assertions only): still a
        // zero-pair survey.
        let kb = parse_kb4("r(a, b)").unwrap();
        let r = Reasoner4::new(&kb);
        let report = contradiction_report(&r, &kb).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(report.contamination(), 0.0);

        // Fully contested: every surveyed fact is ⊤ → contamination 1.
        let kb = parse_kb4("x : A\nx : not A").unwrap();
        let r = Reasoner4::new(&kb);
        let report = contradiction_report(&r, &kb).unwrap();
        assert_eq!(report.total(), 1);
        assert_eq!(report.contamination(), 1.0);

        // Manually assembled report: contamination is contested / total.
        let report = ContradictionReport {
            contested: vec![(IndividualName::new("a"), ConceptName::new("A"))],
            asserted: vec![(IndividualName::new("b"), ConceptName::new("A"))],
            denied: vec![],
            unknown: 2,
        };
        assert_eq!(report.total(), 4);
        assert_eq!(report.contamination(), 0.25);
    }

    #[test]
    fn report_total_is_individuals_times_concepts() {
        // Property: however the verdicts fall, the survey covers exactly
        // the full individual × concept grid — over generated KBs of
        // varying shape.
        for seed in 0..8u64 {
            let kb = ontogen_like_kb(seed);
            let sig = kb.signature();
            let r = Reasoner4::new(&kb);
            let report = contradiction_report(&r, &kb).unwrap();
            assert_eq!(
                report.total(),
                sig.individuals.len() * sig.concepts.len(),
                "seed {seed}"
            );
        }
    }

    /// A small deterministic KB family of varying shape (the `ontogen`
    /// crate depends on this one, so the property test rolls its own).
    fn ontogen_like_kb(seed: u64) -> KnowledgeBase4 {
        let n_concepts = 1 + (seed as usize % 4);
        let n_individuals = 1 + (seed as usize / 2 % 3);
        let mut src = String::new();
        for c in 0..n_concepts {
            src.push_str(&format!("A{c} SubClassOf A{}\n", (c + 1) % n_concepts));
        }
        for i in 0..n_individuals {
            src.push_str(&format!("x{i} : A{}\n", i % n_concepts));
            if seed.is_multiple_of(2) {
                src.push_str(&format!("x{i} : not A{}\n", (i + 1) % n_concepts));
            }
        }
        parse_kb4(&src).unwrap()
    }

    #[test]
    fn seeded_report_matches_unseeded() {
        let kb = parse_kb4(
            "A SubClassOf B
             x : A
             x : not A
             y : B",
        )
        .unwrap();
        let r = Reasoner4::new(&kb);
        let full = contradiction_report(&r, &kb).unwrap();
        // Seed exactly the fact the linter would certify: (x, A) is
        // directly contested. (x, B) is merely asserted — the internal
        // inclusion does not contrapose the negative half.
        let seeds = vec![(IndividualName::new("x"), ConceptName::new("A"))];
        let r2 = Reasoner4::new(&kb);
        let seeded = contradiction_report_seeded(&r2, &kb, &seeds).unwrap();
        assert_eq!(seeded.total(), full.total());
        let sort = |mut v: Vec<(IndividualName, ConceptName)>| {
            v.sort();
            v
        };
        assert_eq!(sort(seeded.contested.clone()), sort(full.contested.clone()));
        assert_eq!(sort(seeded.asserted), sort(full.asserted));
    }

    #[test]
    fn seeded_pairs_outside_the_signature_are_ignored() {
        let kb = parse_kb4("x : A").unwrap();
        let r = Reasoner4::new(&kb);
        let seeds = vec![(IndividualName::new("ghost"), ConceptName::new("A"))];
        let report = contradiction_report_seeded(&r, &kb, &seeds).unwrap();
        assert_eq!(report.total(), 1);
        assert!(report.contested.is_empty());
    }

    #[test]
    fn classification_survives_contradictions() {
        // The headline: classification still works on inconsistent input.
        let kb = parse_kb4(
            "Surgeon SubClassOf Doctor
             Doctor SubClassOf Person
             x : Surgeon
             x : not Surgeon",
        )
        .unwrap();
        let r = Reasoner4::new(&kb);
        assert!(r.is_satisfiable().unwrap());
        let taxonomy = classify4(&r, &kb).unwrap();
        assert!(taxonomy[&ConceptName::new("Surgeon")].contains(&ConceptName::new("Person")));
    }

    fn pairs_sorted(r: &ContradictionReport) -> ContradictionReport {
        let sort = |mut v: Vec<(IndividualName, ConceptName)>| {
            v.sort();
            v
        };
        ContradictionReport {
            contested: sort(r.contested.clone()),
            asserted: sort(r.asserted.clone()),
            denied: sort(r.denied.clone()),
            unknown: r.unknown,
        }
    }

    #[test]
    fn parallel_report_and_classification_match_sequential() {
        for seed in 0..6u64 {
            let kb = ontogen_like_kb(seed);
            let sequential =
                Reasoner4::with_options(&kb, Config::default(), QueryOptions::baseline());
            let parallel = Reasoner4::with_options(
                &kb,
                Config::default(),
                QueryOptions {
                    jobs: 4,
                    ..QueryOptions::default()
                },
            );
            let seq_report = contradiction_report(&sequential, &kb).unwrap();
            let par_report = contradiction_report(&parallel, &kb).unwrap();
            // The report is assembled in grid order — not merely
            // equal-as-sets but bit-identical.
            assert_eq!(seq_report.contested, par_report.contested, "seed {seed}");
            assert_eq!(seq_report.asserted, par_report.asserted, "seed {seed}");
            assert_eq!(seq_report.denied, par_report.denied, "seed {seed}");
            assert_eq!(seq_report.unknown, par_report.unknown, "seed {seed}");
            // Sanity: the sorted views agree too (guards the helper).
            let s = pairs_sorted(&seq_report);
            let p = pairs_sorted(&par_report);
            assert_eq!(s.contested, p.contested);
            assert_eq!(
                classify4(&sequential, &kb).unwrap(),
                classify4(&parallel, &kb).unwrap(),
                "seed {seed}"
            );
        }
    }
}
