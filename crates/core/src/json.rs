//! JSON persistence for the four-valued layer.
//!
//! * [`KnowledgeBase4`] serializes as its parseable text form (see
//!   [`crate::printer4`]) wrapped in an envelope, mirroring the classical
//!   codec in `dl::json`:
//!
//!   ```json
//!   {"format":"shoin4-text/1","kb":"A MaterialSubClassOf B\n"}
//!   ```
//!
//! * [`crate::Interp4`] gets a structured codec (domains, projections and
//!   name maps spelled out) — there is no text syntax for interpretations.

use crate::kb4::KnowledgeBase4;
use crate::parser4::parse_kb4;
use crate::printer4::print_kb4;
use dl::datatype::DataValue;
use jsonio::Value;

/// The envelope format tag for four-valued KBs.
pub const KB4_FORMAT: &str = "shoin4-text/1";

/// Serialize a four-valued KB to a JSON value.
pub fn kb4_to_json(kb: &KnowledgeBase4) -> Value {
    Value::object([("format", KB4_FORMAT.into()), ("kb", print_kb4(kb).into())])
}

/// Deserialize a four-valued KB from a JSON value.
pub fn kb4_from_json(v: &Value) -> Result<KnowledgeBase4, String> {
    let format = v.get("format").and_then(Value::as_str);
    if format != Some(KB4_FORMAT) {
        return Err(format!(
            "unsupported KB format {format:?} (expected {KB4_FORMAT:?})"
        ));
    }
    let text = v
        .get("kb")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing `kb` text field".to_string())?;
    parse_kb4(text).map_err(|e| e.to_string())
}

/// A data value as a tagged object: `{"int":n}`, `{"bool":b}`, `{"str":s}`.
pub fn data_value_to_json(v: &DataValue) -> Value {
    match v {
        DataValue::Integer(i) => Value::object([("int", (*i).into())]),
        DataValue::Boolean(b) => Value::object([("bool", (*b).into())]),
        DataValue::Str(s) => Value::object([("str", s.as_str().into())]),
    }
}

/// Decode a tagged data value.
pub fn data_value_from_json(v: &Value) -> Result<DataValue, String> {
    if let Some(i) = v.get("int").and_then(Value::as_i64) {
        return Ok(DataValue::Integer(i));
    }
    if let Some(b) = v.get("bool").and_then(Value::as_bool) {
        return Ok(DataValue::Boolean(b));
    }
    if let Some(s) = v.get("str").and_then(Value::as_str) {
        return Ok(DataValue::Str(s.to_string()));
    }
    Err(format!("not a tagged data value: {v}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb4_round_trips_through_json_text() {
        let kb = parse_kb4(
            "DataRole: age
             Bird MaterialSubClassOf Fly
             Penguin StrongSubClassOf Bird
             r MaterialSubRoleOf s
             not r(a, b)
             age(a, 7)",
        )
        .unwrap();
        let json = kb4_to_json(&kb).to_string();
        let back = kb4_from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, kb);
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let v = Value::object([("format", "dl-text/1".into()), ("kb", "".into())]);
        assert!(kb4_from_json(&v).is_err());
    }

    #[test]
    fn data_values_round_trip() {
        for v in [
            DataValue::Integer(-3),
            DataValue::Boolean(true),
            DataValue::Str("hi \"there\"".to_string()),
        ] {
            let json = data_value_to_json(&v).to_string();
            let back = data_value_from_json(&Value::parse(&json).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }
}
