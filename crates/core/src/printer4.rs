//! Pretty printer for SHOIN(D)4 knowledge bases, emitting exactly the
//! keyword syntax [`crate::parse_kb4`] reads, so
//! `parse_kb4(print_kb4(kb)) == kb`.
//!
//! This is distinct from [`Axiom4`]'s `Display`, which uses the paper's
//! mathematical symbols (`↦ ⊏ →`, `¬R(a,b)`, `≠`) and is *not* parseable.

use crate::inclusion::InclusionKind;
use crate::kb4::{Axiom4, KnowledgeBase4};

fn concept_keyword(kind: InclusionKind) -> &'static str {
    kind.keyword()
}

fn role_keyword(kind: InclusionKind) -> &'static str {
    match kind {
        InclusionKind::Material => "MaterialSubRoleOf",
        InclusionKind::Internal => "SubRoleOf",
        InclusionKind::Strong => "StrongSubRoleOf",
    }
}

fn data_role_keyword(kind: InclusionKind) -> &'static str {
    match kind {
        InclusionKind::Material => "MaterialSubDataRoleOf",
        InclusionKind::Internal => "SubDataRoleOf",
        InclusionKind::Strong => "StrongSubDataRoleOf",
    }
}

/// A statement may not *start* with `not` (the parser reserves that for
/// negative role assertions), so parenthesize a leading negation.
fn lhs(c: &dl::Concept) -> String {
    let s = c.to_string();
    if s.starts_with("not ") {
        format!("({s})")
    } else {
        s
    }
}

/// Render one axiom as a single parseable statement line.
pub fn print_axiom4(ax: &Axiom4) -> String {
    match ax {
        Axiom4::ConceptInclusion(k, c, d) => {
            format!("{} {} {d}", lhs(c), concept_keyword(*k))
        }
        Axiom4::RoleInclusion(k, r, s) => format!("{r} {} {s}", role_keyword(*k)),
        Axiom4::DataRoleInclusion(k, u, v) => {
            format!("{u} {} {v}", data_role_keyword(*k))
        }
        Axiom4::Transitive(r) => format!("Transitive({r})"),
        Axiom4::ConceptAssertion(a, c) => format!("{a} : {c}"),
        Axiom4::RoleAssertion(r, a, b) => format!("{r}({a}, {b})"),
        Axiom4::NegativeRoleAssertion(r, a, b) => format!("not {r}({a}, {b})"),
        Axiom4::DataAssertion(u, a, v) => format!("{u}({a}, {v})"),
        Axiom4::SameIndividual(a, b) => format!("{a} = {b}"),
        Axiom4::DifferentIndividuals(a, b) => format!("{a} != {b}"),
    }
}

/// Render a whole KB in parseable form, emitting a `DataRole:` declaration
/// first when needed so data restrictions re-parse as data restrictions.
pub fn print_kb4(kb: &KnowledgeBase4) -> String {
    let mut out = String::new();
    let sig = kb.signature();
    if !sig.data_roles.is_empty() {
        out.push_str("DataRole:");
        for u in &sig.data_roles {
            out.push(' ');
            out.push_str(u.as_str());
        }
        out.push('\n');
    }
    for ax in kb.axioms() {
        out.push_str(&print_axiom4(ax));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser4::parse_kb4;

    fn round_trips(src: &str) {
        let kb = parse_kb4(src).unwrap();
        let printed = print_kb4(&kb);
        let reparsed =
            parse_kb4(&printed).unwrap_or_else(|e| panic!("reparse of:\n{printed}\nfailed: {e}"));
        assert_eq!(reparsed, kb, "printed form:\n{printed}");
    }

    #[test]
    fn all_inclusion_kinds_round_trip() {
        round_trips(
            "A MaterialSubClassOf B
             C SubClassOf D
             E StrongSubClassOf F
             r MaterialSubRoleOf s
             r SubRoleOf t
             inverse r StrongSubRoleOf s
             u MaterialSubDataRoleOf v
             u SubDataRoleOf w
             u StrongSubDataRoleOf v",
        );
    }

    #[test]
    fn assertions_and_declarations_round_trip() {
        round_trips(
            "DataRole: age
             Adult MaterialSubClassOf age some integer[18..]
             Transitive(anc)
             a : A and not B
             r(a, b)
             not r(b, a)
             age(a, 42)
             a = b
             a != c",
        );
    }

    #[test]
    fn paper_example_3_round_trips() {
        round_trips(
            "Bird and (hasWing some Wing) MaterialSubClassOf Fly
             Penguin SubClassOf Bird
             Penguin SubClassOf hasWing some Wing
             Penguin SubClassOf not Fly
             tweety : Bird
             tweety : Penguin
             w : Wing
             hasWing(tweety, w)",
        );
    }

    #[test]
    fn leading_negation_on_the_left_side_round_trips() {
        use crate::inclusion::InclusionKind;
        use crate::kb4::{Axiom4, KnowledgeBase4};
        use dl::Concept;
        for kind in InclusionKind::ALL {
            let kb = KnowledgeBase4::from_axioms([Axiom4::ConceptInclusion(
                kind,
                Concept::atomic("A").not(),
                Concept::atomic("B"),
            )]);
            let printed = print_kb4(&kb);
            let reparsed = parse_kb4(&printed)
                .unwrap_or_else(|e| panic!("reparse of:\n{printed}\nfailed: {e}"));
            assert_eq!(reparsed, kb, "printed form:\n{printed}");
        }
    }

    #[test]
    fn printed_form_uses_keywords_not_paper_symbols() {
        let kb = parse_kb4("A MaterialSubClassOf B\nnot r(a, b)").unwrap();
        let printed = print_kb4(&kb);
        assert!(printed.contains("A MaterialSubClassOf B"), "{printed}");
        assert!(printed.contains("not r(a, b)"), "{printed}");
        assert!(!printed.contains('↦'), "{printed}");
        assert!(!printed.contains('¬'), "{printed}");
    }
}
