//! A vendored, dependency-free subset of the `proptest` API — the
//! surface the workspace property tests use: [`Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`Just`], `any::<T>()`, a tiny regex-pattern string strategy, the
//! [`collection`] builders, and the `proptest!` / `prop_assert*` /
//! `prop_oneof!` macros.
//!
//! Generation is purely random (SplitMix64, seeded per test from the
//! test name) with **no shrinking**: a failing case panics with the
//! case number and message. Determinism per test name keeps failures
//! reproducible across runs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// The deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index below `n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf case, `branch`
    /// wraps an inner strategy into composite cases, and `depth` bounds
    /// the nesting. (`_size`/`_branching` are accepted for upstream
    /// signature compatibility; nesting depth is the effective bound.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _size: u32,
        _branching: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = branch(current).boxed();
            current = BoxedStrategy::weighted_union(vec![(1, leaf.clone()), (3, deeper)]);
        }
        current
    }
}

/// Object-safe bridge used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Choose among `arms` with the given relative weights, then
    /// generate from the chosen arm.
    pub fn weighted_union(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "union of zero strategies");
        Union { arms }.boxed()
    }
}

struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut target = rng.next_u64() % total.max(1);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if target < w {
                return arm.generate(rng);
            }
            target -= w;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

/// The mapped strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, used through [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Regex-pattern string strategy (`"[ab]{1,2}"` style patterns).
// ---------------------------------------------------------------------

enum PatternAtom {
    Literal(char),
    Class(Vec<char>),
}

struct PatternPiece {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        '-' => {
                            // Range like `a-z`: expand using the previous
                            // char and the next one.
                            prev = Some('-');
                            class.push('-');
                        }
                        d => {
                            if prev == Some('-') && class.len() >= 2 {
                                let lo = class[class.len() - 2];
                                class.truncate(class.len() - 2);
                                let mut ch = lo;
                                while ch <= d {
                                    class.push(ch);
                                    ch = char::from_u32(ch as u32 + 1).unwrap_or(char::MAX);
                                    if ch == char::MAX {
                                        break;
                                    }
                                }
                            } else {
                                class.push(d);
                            }
                            prev = Some(d);
                        }
                    }
                }
                PatternAtom::Class(class)
            }
            '\\' => PatternAtom::Literal(chars.next().unwrap_or('\\')),
            c => PatternAtom::Literal(c),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    let lo = lo.trim().parse().unwrap_or(0);
                    let hi = hi.trim().parse().unwrap_or(lo.max(1));
                    (lo, hi)
                } else {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 4)
            }
            Some('+') => {
                chars.next();
                (1, 4)
            }
            _ => (1, 1),
        };
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    PatternAtom::Literal(c) => out.push(*c),
                    PatternAtom::Class(class) => {
                        if !class.is_empty() {
                            out.push(class[rng.below(class.len())]);
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collection strategies.
// ---------------------------------------------------------------------

/// Collection-size specifications (`0..8`, `0..=8`, or an exact size).
pub trait SizeRange {
    /// Inclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end.saturating_sub(1))
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategies over standard collections.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` with length drawn from `size` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below(self.max - self.min + 1);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A `BTreeSet` with size drawn from `size`. Duplicate draws are
    /// retried a bounded number of times, so small element domains may
    /// yield sets below the requested minimum — matching how the tests
    /// use it (minimum 0 everywhere).
    pub fn btree_set<S>(elem: S, size: impl SizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { elem, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.min + rng.below(self.max - self.min + 1);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub use collection::{btree_set, vec};

// ---------------------------------------------------------------------
// Runner configuration and failure reporting.
// ---------------------------------------------------------------------

/// Runner configuration (`cases` is the only knob the tests use).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A test-case failure (from `prop_assert*` or `TestCaseError::fail`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[doc(hidden)]
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    for i in 0..cfg.cases {
        if let Err(e) = case(&mut rng, i) {
            panic!("property `{name}` failed at case {i}/{}: {e}", cfg.cases);
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Choose uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::BoxedStrategy::weighted_union(vec![
            $((1u32, $crate::Strategy::boxed($arm))),+
        ])
    };
}

/// Assert within a property; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &cfg, |rng, _case| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        let s = (0u32..5, -6i64..6, 1usize..4);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((-6..6).contains(&b));
            assert!((1..4).contains(&c));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = crate::TestRng::deterministic("union");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let seen: BTreeSet<u8> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(seen, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn recursion_terminates_and_nests() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 20, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::TestRng::deterministic("trees");
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 2, "recursion never nested: {max_depth}");
        assert!(
            max_depth <= 3,
            "recursion exceeded depth bound: {max_depth}"
        );
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::TestRng::deterministic("patterns");
        let s: &'static str = "[ab]{1,2}";
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(
                (1..=2).contains(&v.len()) && v.chars().all(|c| c == 'a' || c == 'b'),
                "{v:?}"
            );
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = crate::TestRng::deterministic("collections");
        let v = crate::collection::vec(0u32..10, 2..5);
        let s = crate::collection::btree_set(0u32..100, 0..=6);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((2..=4).contains(&xs.len()), "{xs:?}");
            let set = s.generate(&mut rng);
            assert!(set.len() <= 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, prop_assert_eq works, `?` works.
        #[test]
        fn macro_smoke(x in 0u32..10, y in 0u32..10) {
            let sum = x + y;
            prop_assert!(sum < 20, "sum {} out of range", sum);
            prop_assert_eq!(sum, y + x);
            let parsed: u32 = sum
                .to_string()
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, sum);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(5),
            |_rng, _case| Err(TestCaseError::fail("boom")),
        );
    }
}
