//! A minimal, dependency-free JSON layer: a [`Value`] model, a
//! recursive-descent parser and a compact printer (no insignificant
//! whitespace), plus small builder/accessor helpers.
//!
//! This replaces the external `serde`/`serde_json` stack for the few
//! places the workspace needs JSON — experiment rows, CLI `--format
//! json` output, and persistence of KBs and interpretations — while
//! keeping the build self-contained and offline.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional/exponent part, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are kept sorted for deterministic output.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a JSON document.
    pub fn parse(src: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `self` as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `self` as an integer (exact `Int` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// `self` as a float; integers coerce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// `self` as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `self` as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `self` as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}
impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// Compact printing: no spaces, object keys in map order.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip representation; force a
                    // fractional part so the value re-parses as Float-able.
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8")),
                        };
                        if start + len > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-42", "3.5", "\"hi\""] {
            let v = Value::parse(src).unwrap();
            assert_eq!(Value::parse(&v.to_string()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn compact_output_has_no_spaces() {
        let v = Value::object([("a", Value::from(1i64)), ("b", Value::from("x"))]);
        assert_eq!(v.to_string(), "{\"a\":1,\"b\":\"x\"}");
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#" {"xs": [1, 2.5, {"y": null}], "s": "a\nb"} "#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\nb"));
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs[0].as_i64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(xs[2].get("y"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let cases = ["a\"b", "back\\slash", "tab\there", "uni→code", "\u{1}ctl"];
        for s in cases {
            let v = Value::Str(s.to_string());
            assert_eq!(Value::parse(&v.to_string()).unwrap(), v, "{s:?}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Value::parse(r#""Aé😀""#).unwrap(),
            Value::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 123.456, -7.25e10, 1e-9] {
            let printed = Value::Float(x).to_string();
            assert_eq!(Value::parse(&printed).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("1 2").is_err());
    }
}
