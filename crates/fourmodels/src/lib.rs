//! Finite-model machinery for SHOIN(D)4 and classical SHOIN(D).
//!
//! Tableau algorithms are fast but intricate; this crate is the slow,
//! obviously-correct counterpart: it **enumerates every interpretation**
//! over a small finite domain and checks satisfaction directly against the
//! Table 2/3 semantics in [`shoin4::interp4`]. The test suite uses it as
//! the specification oracle for
//!
//! * the classical tableau (`tableau` must agree with two-valued
//!   enumeration on small KBs),
//! * the SHOIN(D)4 reduction (Lemma 5 / Theorem 6 property tests), and
//! * the paper's Table 4, regenerated exactly by [`table4`].
//!
//! ```
//! use fourmodels::{enumerate::EnumConfig, check};
//! use shoin4::parse_kb4;
//!
//! let kb = parse_kb4("x : A\nx : not A").unwrap();
//! // Paraconsistency, by brute force: the KB has four-valued models...
//! assert!(check::satisfiable_by_enumeration(&kb, &EnumConfig::for_kb(&kb)));
//! ```

pub mod check;
pub mod enumerate;
pub mod table4;
pub mod verify;

pub use check::{entailed_positive_info, satisfiable_by_enumeration};
pub use enumerate::{EnumConfig, ModelIter};
pub use table4::{table4_rows, Table4Row};
