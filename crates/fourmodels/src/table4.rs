//! Reproduction of **Table 4** of the paper: the four-valued models of
//! Example 4 ("single Smith adopts a child Kate").
//!
//! The knowledge base is
//!
//! ```text
//! ≥1.hasChild ⊏ Parent
//! Parent ↦ Married
//! hasChild(smith, kate)
//! ¬Married(smith)
//! ```
//!
//! over the domain `{smith, kate}`, with `hasChild` declared
//! non-reflexive (the paper's closing note under Table 4: the semantics
//! "had better not refer to unreasonable interpretations like
//! hasChild(smith, smith)" — we bar reflexive pairs from `proj⁺`).
//!
//! The paper lists nine models M1–M9 by the truth values of four
//! observables. [`table4_rows`] enumerates *all* models, projects them
//! onto those observables and deduplicates — recovering exactly the nine
//! rows, grouped into the paper's four display lines by
//! [`table4_grouped`].

use crate::enumerate::{EnumConfig, ModelIter};
use dl::name::{IndividualName, RoleName};
use dl::{Concept, RoleExpr};
use fourval::TruthValue;
use shoin4::{parse_kb4, KnowledgeBase4};
use std::collections::BTreeSet;

/// The Example 4 knowledge base.
pub fn example4_kb() -> KnowledgeBase4 {
    parse_kb4(
        "hasChild min 1 SubClassOf Parent
         Parent MaterialSubClassOf Married
         hasChild(smith, kate)
         smith : not Married",
    )
    .expect("example 4 parses")
}

/// The enumeration configuration of Table 4: domain `{smith, kate}`,
/// non-reflexive `hasChild`.
pub fn example4_config() -> EnumConfig {
    let kb = example4_kb();
    let mut cfg = EnumConfig::for_kb(&kb);
    cfg.nonreflexive_roles.insert(RoleName::new("hasChild"));
    cfg
}

/// One projected row: the truth values of the four observables the paper
/// tabulates for Smith.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Table4Row {
    /// `hasChild(smith, kate)`
    pub has_child: TruthValue,
    /// `≥1.hasChild (smith)`
    pub at_least_one_child: TruthValue,
    /// `Parent(smith)`
    pub parent: TruthValue,
    /// `Married(smith)`
    pub married: TruthValue,
}

/// Enumerate all models of Example 4 and project them to the distinct
/// Table 4 rows (sorted).
pub fn table4_rows() -> Vec<Table4Row> {
    let kb = example4_kb();
    let cfg = example4_config();
    let smith = IndividualName::new("smith");
    let kate = IndividualName::new("kate");
    let at_least = Concept::at_least(1, RoleExpr::named("hasChild"));
    let parent = Concept::atomic("Parent");
    let married = Concept::atomic("Married");
    let mut rows: BTreeSet<Table4Row> = BTreeSet::new();
    for m in ModelIter::new(&kb, &cfg).filter(|m| m.satisfies(&kb)) {
        let s = m.individual(&smith).expect("smith in domain");
        let k = m.individual(&kate).expect("kate in domain");
        let r = m.role(&RoleName::new("hasChild"));
        let has_child = TruthValue::from_bits(r.pos.contains(&(s, k)), r.neg.contains(&(s, k)));
        rows.insert(Table4Row {
            has_child,
            at_least_one_child: m.eval(&at_least).status(&s),
            parent: m.eval(&parent).status(&s),
            married: m.eval(&married).status(&s),
        });
    }
    rows.into_iter().collect()
}

/// The paper's presentation: four display lines, each a set of values per
/// column (a cell like `t/⊤` means both occur).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Group {
    /// Label, e.g. `"M1-M4"`.
    pub label: &'static str,
    /// Cell value sets in column order (hasChild, ≥1.hasChild, Parent,
    /// Married).
    pub cells: [Vec<TruthValue>; 4],
    /// How many concrete rows the line covers.
    pub row_count: usize,
}

/// Group the concrete rows into the paper's four lines.
///
/// The grouping keys are the columns the paper holds constant per line:
/// `≥1.hasChild` and `Married` (observe Table 4: within each line only
/// `hasChild` and `Parent` vary over `t/⊤`).
pub fn table4_grouped() -> Vec<Table4Group> {
    use TruthValue::{Both, True};
    let rows = table4_rows();
    let group = |al: TruthValue, married: TruthValue| -> Vec<Table4Row> {
        rows.iter()
            .copied()
            .filter(|r| r.at_least_one_child == al && r.married == married)
            .collect()
    };
    let collect = |label: &'static str, members: Vec<Table4Row>| -> Table4Group {
        let mut cells: [BTreeSet<TruthValue>; 4] = Default::default();
        for r in &members {
            cells[0].insert(r.has_child);
            cells[1].insert(r.at_least_one_child);
            cells[2].insert(r.parent);
            cells[3].insert(r.married);
        }
        Table4Group {
            label,
            cells: cells.map(|s| s.into_iter().collect()),
            row_count: members.len(),
        }
    };
    vec![
        collect("M1-M4", group(True, Both)),
        collect("M5-M6", group(True, TruthValue::False)),
        collect("M7-M8", group(Both, Both)),
        collect("M9", group(Both, TruthValue::False)),
    ]
}

/// Render the grouped table in the paper's layout.
pub fn render_table4() -> String {
    fn cell(vals: &[TruthValue]) -> String {
        vals.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("/")
    }
    let mut out =
        String::from("      | hasChild(s,k) | >=1.hasChild(s) | Parent(s) | Married(s)\n");
    for g in table4_grouped() {
        out.push_str(&format!(
            "{:<5} | {:^13} | {:^15} | {:^9} | {:^10}\n",
            g.label,
            cell(&g.cells[0]),
            cell(&g.cells[1]),
            cell(&g.cells[2]),
            cell(&g.cells[3]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use TruthValue::{Both, False, True};

    #[test]
    fn exactly_nine_distinct_rows() {
        let rows = table4_rows();
        assert_eq!(rows.len(), 9, "Table 4 lists nine models M1–M9");
    }

    #[test]
    fn rows_match_the_paper() {
        let rows: BTreeSet<Table4Row> = table4_rows().into_iter().collect();
        let expected = [
            // M1-M4: hasChild t/⊤, ≥1 t, Parent t/⊤, Married ⊤.
            (True, True, True, Both),
            (True, True, Both, Both),
            (Both, True, True, Both),
            (Both, True, Both, Both),
            // M5-M6: hasChild t/⊤, ≥1 t, Parent ⊤, Married f.
            (True, True, Both, False),
            (Both, True, Both, False),
            // M7-M8: hasChild ⊤, ≥1 ⊤, Parent t/⊤, Married ⊤.
            (Both, Both, True, Both),
            (Both, Both, Both, Both),
            // M9: hasChild ⊤, ≥1 ⊤, Parent ⊤, Married f.
            (Both, Both, Both, False),
        ];
        let expected: BTreeSet<Table4Row> = expected
            .into_iter()
            .map(
                |(has_child, at_least_one_child, parent, married)| Table4Row {
                    has_child,
                    at_least_one_child,
                    parent,
                    married,
                },
            )
            .collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn grouping_covers_all_nine() {
        let groups = table4_grouped();
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.iter().map(|g| g.row_count).sum::<usize>(), 9);
        assert_eq!(groups[0].row_count, 4); // M1-M4
        assert_eq!(groups[1].row_count, 2); // M5-M6
        assert_eq!(groups[2].row_count, 2); // M7-M8
        assert_eq!(groups[3].row_count, 1); // M9
    }

    #[test]
    fn grouped_cells_match_paper_presentation() {
        let groups = table4_grouped();
        // M1-M4: t/⊤ | t | t/⊤ | ⊤
        assert_eq!(groups[0].cells[0], vec![Both, True]);
        assert_eq!(groups[0].cells[1], vec![True]);
        assert_eq!(groups[0].cells[2], vec![Both, True]);
        assert_eq!(groups[0].cells[3], vec![Both]);
        // M9: ⊤ | ⊤ | ⊤ | f
        assert_eq!(groups[3].cells[0], vec![Both]);
        assert_eq!(groups[3].cells[1], vec![Both]);
        assert_eq!(groups[3].cells[2], vec![Both]);
        assert_eq!(groups[3].cells[3], vec![False]);
    }

    #[test]
    fn render_contains_all_labels() {
        let s = render_table4();
        for label in ["M1-M4", "M5-M6", "M7-M8", "M9"] {
            assert!(s.contains(label), "{s}");
        }
    }

    #[test]
    fn without_nonreflexivity_more_rows_appear() {
        // Dropping the non-reflexive restriction admits models with
        // hasChild(smith, smith) positively, which Table 4 excludes.
        let kb = example4_kb();
        let cfg = EnumConfig::for_kb(&kb); // no restriction
        let count = ModelIter::new(&kb, &cfg)
            .filter(|m| m.satisfies(&kb))
            .count();
        let restricted = ModelIter::new(&kb, &example4_config())
            .filter(|m| m.satisfies(&kb))
            .count();
        assert!(count > restricted);
    }
}
