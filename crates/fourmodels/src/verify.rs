//! Independent verification of tableau-extracted models: convert an
//! [`tableau::model::ExtractedModel`] into a (classical) [`Interp4`] and
//! check it against the Table 1/2 semantics.
//!
//! This closes the loop between the two reasoning stacks: the tableau
//! *claims* satisfiability; the checker *exhibits* the model. Only
//! meaningful for unblocked extractions (`blocked_nodes == 0`) over KBs
//! without datatype axioms (the extraction does not materialize data
//! successors — the concrete domain is checked by the tableau's oracle).

use dl::kb::KnowledgeBase;
use fourval::SetPair;
use shoin4::interp4::{Elem, Interp4, RolePair};
use shoin4::{InclusionKind, KnowledgeBase4};
use std::collections::BTreeMap;
use tableau::model::ExtractedModel;

/// Convert an extracted model into a classical interpretation over a
/// dense domain `{0..n}`.
///
/// Concept and role assignments are classical: `pos` = the extension,
/// `neg` = its complement — including signature names with *empty*
/// extensions (a name absent from every label still needs the classical
/// `<∅, Δ>` assignment, not the unknown `<∅, ∅>`).
pub fn interp_from_extracted(m: &ExtractedModel, kb: &KnowledgeBase) -> Interp4 {
    let index: BTreeMap<tableau::node::NodeId, Elem> = m
        .elements
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as Elem))
        .collect();
    let n = index.len() as u32;
    let mut out = Interp4::with_domain_size(n.max(1));
    let sig = kb.signature();
    let concept_names: std::collections::BTreeSet<_> = sig
        .concepts
        .iter()
        .cloned()
        .chain(m.concepts.keys().cloned())
        .collect();
    for name in concept_names {
        let pos: std::collections::BTreeSet<Elem> = m
            .concepts
            .get(&name)
            .map(|ext| ext.iter().map(|id| index[id]).collect())
            .unwrap_or_default();
        let neg = (0..n).filter(|e| !pos.contains(e)).collect();
        out.set_concept(name, SetPair { pos, neg });
    }
    let role_names: std::collections::BTreeSet<_> = sig
        .roles
        .iter()
        .cloned()
        .chain(m.roles.keys().cloned())
        .collect();
    for name in role_names {
        let pos: std::collections::BTreeSet<(Elem, Elem)> = m
            .roles
            .get(&name)
            .map(|ext| ext.iter().map(|(a, b)| (index[a], index[b])).collect())
            .unwrap_or_default();
        let neg = (0..n)
            .flat_map(|x| (0..n).map(move |y| (x, y)))
            .filter(|p| !pos.contains(p))
            .collect();
        out.set_role(name, RolePair { pos, neg });
    }
    for (o, id) in &m.individuals {
        out.set_individual(o.clone(), index[id]);
    }
    out
}

/// Does the extracted model genuinely satisfy the classical KB?
///
/// Returns `None` when verification does not apply (blocked nodes, or
/// datatype axioms present); `Some(bool)` otherwise.
pub fn verify_extracted(m: &ExtractedModel, kb: &KnowledgeBase) -> Option<bool> {
    if m.blocked_nodes > 0 {
        return None;
    }
    let has_data = !kb.signature().data_roles.is_empty();
    if has_data {
        return None;
    }
    let interp = interp_from_extracted(m, kb);
    let view = KnowledgeBase4::from_classical(kb, InclusionKind::Internal);
    Some(interp.satisfies(&view))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;
    use tableau::Reasoner;

    fn model_of(src: &str) -> (ExtractedModel, KnowledgeBase) {
        let kb = parse_kb(src).unwrap();
        let mut r = Reasoner::new(&kb);
        let m = r.find_model().unwrap().expect("satisfiable");
        (m, kb)
    }

    #[test]
    fn simple_abox_model_verifies() {
        let (m, kb) = model_of(
            "A SubClassOf B
             x : A
             r(x, y)
             x : r only C",
        );
        assert_eq!(verify_extracted(&m, &kb), Some(true));
    }

    #[test]
    fn disjunction_model_verifies() {
        let (m, kb) = model_of(
            "x : A or B
             x : not A
             A SubClassOf C
             B SubClassOf C",
        );
        assert_eq!(verify_extracted(&m, &kb), Some(true));
        // And the model must place x in B and C.
        let interp = interp_from_extracted(&m, &kb);
        let x = interp.individual(&dl::IndividualName::new("x")).unwrap();
        assert!(interp.eval(&dl::Concept::atomic("B")).pos.contains(&x));
        assert!(interp.eval(&dl::Concept::atomic("C")).pos.contains(&x));
    }

    #[test]
    fn number_restriction_model_verifies() {
        let (m, kb) = model_of(
            "x : r min 2
             x : r max 3",
        );
        assert_eq!(verify_extracted(&m, &kb), Some(true));
    }

    #[test]
    fn transitive_role_model_verifies() {
        let (m, kb) = model_of(
            "Transitive(anc)
             anc(a, b)
             anc(b, c)
             a : anc only X",
        );
        assert_eq!(verify_extracted(&m, &kb), Some(true));
        let interp = interp_from_extracted(&m, &kb);
        let c = interp.individual(&dl::IndividualName::new("c")).unwrap();
        assert!(interp.eval(&dl::Concept::atomic("X")).pos.contains(&c));
    }

    #[test]
    fn blocked_models_are_not_verified() {
        let (m, kb) = model_of(
            "Person SubClassOf hasParent some Person
             p : Person",
        );
        assert!(m.blocked_nodes > 0);
        assert_eq!(verify_extracted(&m, &kb), None);
    }

    #[test]
    fn random_satisfiable_kbs_extract_verified_models() {
        use ontogen::random::{random_kb, RandomParams};
        let mut verified = 0;
        for seed in 0..40u64 {
            let kb = random_kb(&RandomParams {
                n_concepts: 4,
                n_roles: 2,
                n_individuals: 3,
                n_tbox: 4,
                n_abox: 5,
                max_depth: 1,
                number_restrictions: true,
                inverse_roles: true,
                seed,
            });
            // A small wall-clock budget: seeds whose search diverges
            // (NN-rule with inverse roles) are skipped, not waited out.
            let cfg = tableau::Config {
                time_budget: Some(std::time::Duration::from_millis(500)),
                ..Default::default()
            };
            let mut r = Reasoner::with_config(&kb, cfg);
            let Ok(Some(m)) = r.find_model() else {
                continue;
            };
            match verify_extracted(&m, &kb) {
                Some(ok) => {
                    assert!(
                        ok,
                        "seed {seed}: extracted structure is not a model of\n{}",
                        dl::printer::print_kb(&kb)
                    );
                    verified += 1;
                }
                None => continue,
            }
        }
        assert!(
            verified >= 10,
            "only {verified}/40 seeds produced verifiable models"
        );
    }
}
