//! Exhaustive enumeration of four-valued (and classical) interpretations
//! over a fixed finite domain.
//!
//! The enumeration space is a mixed-radix counter over *atoms*: one atom
//! per `(concept, element)`, `(role, element, element)` and
//! `(data role, element, value)` triple, each taking its `<pos, neg>`
//! bits through the four values — or just two values in classical mode.
//!
//! Individuals are pinned to the first domain elements in sorted-name
//! order (a unique-name convention — `SameIndividual` axioms are
//! therefore satisfiable only reflexively under this oracle; the test
//! generators avoid them).

use dl::datatype::DataValue;
use dl::name::{ConceptName, DataRoleName, RoleName};
use fourval::SetPair;
use shoin4::interp4::{DataRolePair, Elem, Interp4, RolePair};
use shoin4::KnowledgeBase4;
use std::collections::BTreeSet;

/// Configuration of the enumeration space.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Domain size; must be at least the number of individuals.
    pub domain_size: u32,
    /// Roles barred from *positive* reflexive pairs (`(x,x) ∉ proj⁺(R)`) —
    /// the paper's "non-reflexive role" note under Table 4.
    pub nonreflexive_roles: BTreeSet<RoleName>,
    /// The active data domain for datatype-role atoms.
    pub data_values: Vec<DataValue>,
    /// Restrict to classical interpretations (two-valued mode).
    pub classical_only: bool,
    /// Abort if the space exceeds this many interpretations.
    pub max_interpretations: u128,
}

impl EnumConfig {
    /// A config sized to the KB: domain = its individuals (at least one
    /// element), data values = those mentioned in assertions.
    pub fn for_kb(kb: &KnowledgeBase4) -> Self {
        let sig = kb.signature();
        let data_values: Vec<DataValue> = kb
            .axioms()
            .iter()
            .filter_map(|ax| match ax {
                shoin4::Axiom4::DataAssertion(_, _, v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        EnumConfig {
            domain_size: (sig.individuals.len() as u32).max(1),
            nonreflexive_roles: BTreeSet::new(),
            data_values,
            classical_only: false,
            max_interpretations: 50_000_000,
        }
    }

    /// Same, in classical (two-valued) mode.
    pub fn classical_for_kb(kb: &KnowledgeBase4) -> Self {
        EnumConfig {
            classical_only: true,
            ..Self::for_kb(kb)
        }
    }
}

/// One assignable atom of the interpretation.
#[derive(Debug, Clone)]
enum Atom {
    Concept(ConceptName, Elem),
    Role(RoleName, Elem, Elem),
    DataRole(DataRoleName, Elem, DataValue),
}

/// The `(pos, neg)` choices an atom ranges over.
fn choices(atom: &Atom, cfg: &EnumConfig) -> Vec<(bool, bool)> {
    let four = [(false, false), (true, false), (false, true), (true, true)];
    let classical = [(true, false), (false, true)];
    let restricted_pos = match atom {
        Atom::Role(r, x, y) => x == y && cfg.nonreflexive_roles.contains(r),
        _ => false,
    };
    let base: &[(bool, bool)] = if cfg.classical_only {
        &classical
    } else {
        &four
    };
    base.iter()
        .copied()
        .filter(|(p, _)| !(restricted_pos && *p))
        .collect()
}

/// Lazy iterator over all interpretations of a KB's signature.
pub struct ModelIter {
    atoms: Vec<Atom>,
    choice_sets: Vec<Vec<(bool, bool)>>,
    counter: Option<Vec<usize>>,
    template: Interp4,
    signature_concepts: Vec<ConceptName>,
    signature_roles: Vec<RoleName>,
    signature_data_roles: Vec<DataRoleName>,
}

impl ModelIter {
    /// Build the enumeration space for `kb` under `cfg`.
    ///
    /// # Panics
    /// If the domain cannot hold the individuals or the space exceeds
    /// `cfg.max_interpretations`.
    pub fn new(kb: &KnowledgeBase4, cfg: &EnumConfig) -> Self {
        let sig = kb.signature();
        assert!(
            (sig.individuals.len() as u32) <= cfg.domain_size,
            "domain of size {} cannot hold {} individuals",
            cfg.domain_size,
            sig.individuals.len()
        );
        let mut template = Interp4::with_domain_size(cfg.domain_size);
        for (i, o) in sig.individuals.iter().enumerate() {
            template.set_individual(o.clone(), i as Elem);
        }
        for v in &cfg.data_values {
            template.add_data_value(v.clone());
        }
        let elems: Vec<Elem> = (0..cfg.domain_size).collect();
        let mut atoms = Vec::new();
        for a in &sig.concepts {
            for &x in &elems {
                atoms.push(Atom::Concept(a.clone(), x));
            }
        }
        for r in &sig.roles {
            for &x in &elems {
                for &y in &elems {
                    atoms.push(Atom::Role(r.clone(), x, y));
                }
            }
        }
        for u in &sig.data_roles {
            for &x in &elems {
                for v in &cfg.data_values {
                    atoms.push(Atom::DataRole(u.clone(), x, v.clone()));
                }
            }
        }
        let choice_sets: Vec<Vec<(bool, bool)>> = atoms.iter().map(|a| choices(a, cfg)).collect();
        let total: u128 = choice_sets
            .iter()
            .map(|c| c.len() as u128)
            .try_fold(1u128, |acc, n| acc.checked_mul(n))
            .expect("enumeration space overflows u128");
        assert!(
            total <= cfg.max_interpretations,
            "enumeration space of {total} interpretations exceeds the cap of {}",
            cfg.max_interpretations
        );
        ModelIter {
            counter: Some(vec![0; atoms.len()]),
            atoms,
            choice_sets,
            template,
            signature_concepts: sig.concepts.into_iter().collect(),
            signature_roles: sig.roles.into_iter().collect(),
            signature_data_roles: sig.data_roles.into_iter().collect(),
        }
    }

    /// The number of interpretations in the space.
    pub fn total(&self) -> u128 {
        self.choice_sets.iter().map(|c| c.len() as u128).product()
    }

    fn materialize(&self, counter: &[usize]) -> Interp4 {
        let mut i = self.template.clone();
        // Start all signature names at empty pairs so the interpretation
        // is total on the signature.
        for a in &self.signature_concepts {
            i.set_concept(a.clone(), SetPair::empty());
        }
        for r in &self.signature_roles {
            i.set_role(r.clone(), RolePair::default());
        }
        for u in &self.signature_data_roles {
            i.set_data_role(u.clone(), DataRolePair::default());
        }
        let mut concepts: std::collections::BTreeMap<ConceptName, SetPair<Elem>> =
            Default::default();
        let mut roles: std::collections::BTreeMap<RoleName, RolePair> = Default::default();
        let mut data_roles: std::collections::BTreeMap<DataRoleName, DataRolePair> =
            Default::default();
        for (idx, (atom, &choice)) in self.atoms.iter().zip(counter).enumerate() {
            let (pos, neg) = self.choice_sets[idx][choice];
            match atom {
                Atom::Concept(a, x) => {
                    let entry = concepts.entry(a.clone()).or_default();
                    if pos {
                        entry.pos.insert(*x);
                    }
                    if neg {
                        entry.neg.insert(*x);
                    }
                }
                Atom::Role(r, x, y) => {
                    let entry = roles.entry(r.clone()).or_default();
                    if pos {
                        entry.pos.insert((*x, *y));
                    }
                    if neg {
                        entry.neg.insert((*x, *y));
                    }
                }
                Atom::DataRole(u, x, v) => {
                    let entry = data_roles.entry(u.clone()).or_default();
                    if pos {
                        entry.pos.insert((*x, v.clone()));
                    }
                    if neg {
                        entry.neg.insert((*x, v.clone()));
                    }
                }
            }
        }
        for (a, p) in concepts {
            i.set_concept(a, p);
        }
        for (r, p) in roles {
            i.set_role(r, p);
        }
        for (u, p) in data_roles {
            i.set_data_role(u, p);
        }
        i
    }
}

impl Iterator for ModelIter {
    type Item = Interp4;

    fn next(&mut self) -> Option<Interp4> {
        let counter = self.counter.as_mut()?;
        let snapshot = counter.clone();
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == counter.len() {
                self.counter = None;
                break;
            }
            counter[i] += 1;
            if counter[i] < self.choice_sets[i].len() {
                break;
            }
            counter[i] = 0;
            i += 1;
        }
        Some(self.materialize(&snapshot))
    }
}

/// Count the models of `kb` (interpretations satisfying every axiom),
/// splitting the space across scoped worker threads.
pub fn count_models_parallel(kb: &KnowledgeBase4, cfg: &EnumConfig, workers: usize) -> u64 {
    let workers = workers.max(1);
    let iter = ModelIter::new(kb, cfg);
    let total = iter.total();
    if total == 0 {
        return 0;
    }
    // Partition by stripes: worker w takes interpretations w, w+k, w+2k…
    // Each worker re-creates the iterator and skips; for the sizes this
    // oracle is used at, re-enumeration dominated by satisfaction checks.
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..workers {
            handles.push(s.spawn(move || {
                ModelIter::new(kb, cfg)
                    .enumerate()
                    .filter(|(idx, _)| idx % workers == w)
                    .filter(|(_, m)| m.satisfies(kb))
                    .count() as u64
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::parse_kb4;

    #[test]
    fn space_size_is_product_of_choices() {
        let kb = parse_kb4("x : A").unwrap();
        // One concept, one individual, domain 1 → 4 interpretations.
        let cfg = EnumConfig::for_kb(&kb);
        let iter = ModelIter::new(&kb, &cfg);
        assert_eq!(iter.total(), 4);
        assert_eq!(iter.count(), 4);
    }

    #[test]
    fn classical_mode_halves_choices() {
        let kb = parse_kb4("x : A").unwrap();
        let cfg = EnumConfig::classical_for_kb(&kb);
        assert_eq!(ModelIter::new(&kb, &cfg).total(), 2);
    }

    #[test]
    fn roles_enumerate_over_pairs() {
        let kb = parse_kb4("r(a, b)").unwrap();
        // Domain 2, one role → 4 pairs × 4 values = 256.
        let cfg = EnumConfig::for_kb(&kb);
        assert_eq!(ModelIter::new(&kb, &cfg).total(), 256);
    }

    #[test]
    fn nonreflexive_restriction_shrinks_space() {
        let kb = parse_kb4("r(a, b)").unwrap();
        let mut cfg = EnumConfig::for_kb(&kb);
        cfg.nonreflexive_roles.insert(dl::RoleName::new("r"));
        // Pairs (a,a),(b,b) have 2 choices, (a,b),(b,a) have 4 → 2·2·4·4.
        assert_eq!(ModelIter::new(&kb, &cfg).total(), 64);
    }

    #[test]
    fn every_model_satisfies_or_not_consistently() {
        let kb = parse_kb4("x : A\nA SubClassOf B").unwrap();
        let cfg = EnumConfig::for_kb(&kb);
        let models: Vec<Interp4> = ModelIter::new(&kb, &cfg)
            .filter(|m| m.satisfies(&kb))
            .collect();
        assert!(!models.is_empty());
        for m in &models {
            // x ∈ pos(A) and pos(A) ⊆ pos(B).
            let x = m.individual(&dl::IndividualName::new("x")).unwrap();
            assert!(m.eval(&dl::Concept::atomic("A")).pos.contains(&x));
            assert!(m.eval(&dl::Concept::atomic("B")).pos.contains(&x));
        }
    }

    #[test]
    fn contradiction_has_models_four_valued_but_not_classical() {
        let kb = parse_kb4("x : A\nx : not A").unwrap();
        let four = ModelIter::new(&kb, &EnumConfig::for_kb(&kb))
            .filter(|m| m.satisfies(&kb))
            .count();
        assert!(four > 0);
        let classical = ModelIter::new(&kb, &EnumConfig::classical_for_kb(&kb))
            .filter(|m| m.satisfies(&kb))
            .count();
        assert_eq!(classical, 0);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let kb = parse_kb4("r(a, b)\na : A").unwrap();
        let cfg = EnumConfig::for_kb(&kb);
        let sequential = ModelIter::new(&kb, &cfg)
            .filter(|m| m.satisfies(&kb))
            .count() as u64;
        assert_eq!(count_models_parallel(&kb, &cfg, 4), sequential);
    }

    #[test]
    fn anonymous_domain_elements_matter() {
        // x : ∃r.A with a one-element domain has no four-valued model in
        // which the successor differs from x AND x ∉ proj⁺(r)(x,x)…
        // concretely: over domain {x} the KB is satisfiable only with a
        // reflexive positive r-pair; barring it kills all models, while
        // an extra anonymous element restores satisfiability.
        let kb = parse_kb4("x : r some A").unwrap();
        let mut cfg = EnumConfig::for_kb(&kb);
        cfg.nonreflexive_roles.insert(dl::RoleName::new("r"));
        assert_eq!(cfg.domain_size, 1);
        let none = ModelIter::new(&kb, &cfg)
            .filter(|m| m.satisfies(&kb))
            .count();
        assert_eq!(none, 0);
        cfg.domain_size = 2;
        let some = ModelIter::new(&kb, &cfg)
            .filter(|m| m.satisfies(&kb))
            .count();
        assert!(some > 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn domain_must_fit_individuals() {
        let kb = parse_kb4("r(a, b)\nc : A").unwrap();
        let mut cfg = EnumConfig::for_kb(&kb);
        cfg.domain_size = 2; // three individuals
        let _ = ModelIter::new(&kb, &cfg);
    }

    #[test]
    #[should_panic(expected = "exceeds the cap")]
    fn space_cap_is_enforced() {
        let kb = parse_kb4("r(a, b)\ns(b, c)\nt(a, c)").unwrap();
        let mut cfg = EnumConfig::for_kb(&kb);
        cfg.max_interpretations = 10;
        let _ = ModelIter::new(&kb, &cfg);
    }
}
