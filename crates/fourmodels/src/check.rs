//! Brute-force decision procedures on top of the enumerator — the
//! specification oracle the reasoners are validated against.
//!
//! All of these quantify over interpretations with the configured finite
//! domain, so "valid" here means *valid over domains of that size*. For
//! the equivalence tests we choose KBs whose satisfiability is invariant
//! under domain growth at the tested sizes (no axioms forcing large
//! models beyond the configured slack).

use crate::enumerate::{EnumConfig, ModelIter};
use dl::name::IndividualName;
use dl::Concept;
use fourval::TruthValue;
use shoin4::{Axiom4, KnowledgeBase4};

/// Does the KB have a four-valued model over the configured domain?
pub fn satisfiable_by_enumeration(kb: &KnowledgeBase4, cfg: &EnumConfig) -> bool {
    ModelIter::new(kb, cfg).any(|m| m.satisfies(kb))
}

/// Is `a ∈ proj⁺(C)` in *every* model over the configured domain?
/// (The brute-force counterpart of `Reasoner4::has_positive_info`.)
pub fn entailed_positive_info(
    kb: &KnowledgeBase4,
    cfg: &EnumConfig,
    a: &IndividualName,
    c: &Concept,
) -> bool {
    ModelIter::new(kb, cfg)
        .filter(|m| m.satisfies(kb))
        .all(|m| match m.individual(a) {
            Some(e) => m.eval(c).pos.contains(&e),
            None => false,
        })
}

/// Is `a ∈ proj⁻(C)` in every model over the configured domain?
pub fn entailed_negative_info(
    kb: &KnowledgeBase4,
    cfg: &EnumConfig,
    a: &IndividualName,
    c: &Concept,
) -> bool {
    ModelIter::new(kb, cfg)
        .filter(|m| m.satisfies(kb))
        .all(|m| match m.individual(a) {
            Some(e) => m.eval(c).neg.contains(&e),
            None => false,
        })
}

/// The four-valued entailment answer for an instance query, by brute
/// force. Returns `None` when the KB has no models over this domain.
pub fn query_by_enumeration(
    kb: &KnowledgeBase4,
    cfg: &EnumConfig,
    a: &IndividualName,
    c: &Concept,
) -> Option<TruthValue> {
    if !satisfiable_by_enumeration(kb, cfg) {
        return None;
    }
    Some(TruthValue::from_bits(
        entailed_positive_info(kb, cfg, a, c),
        entailed_negative_info(kb, cfg, a, c),
    ))
}

/// Is the axiom satisfied in every model over the configured domain?
pub fn entailed_axiom_by_enumeration(kb: &KnowledgeBase4, cfg: &EnumConfig, ax: &Axiom4) -> bool {
    ModelIter::new(kb, cfg)
        .filter(|m| m.satisfies(kb))
        .all(|m| m.satisfies_axiom(ax))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::parse_kb4;

    fn ind(s: &str) -> IndividualName {
        IndividualName::new(s)
    }

    #[test]
    fn example1_shrunk_by_brute_force() {
        // A two-individual variant of the paper's Example 1 (the full
        // three-individual version exceeds the exhaustive oracle's
        // budget; `Reasoner4` covers it in its own tests). John both is
        // and is not a doctor, and *also* demonstrably has a patient.
        let kb = parse_kb4(
            "hasPatient some Patient SubClassOf Doctor
             john : not Doctor
             mary : Patient
             hasPatient(john, mary)",
        )
        .unwrap();
        let cfg = EnumConfig::for_kb(&kb);
        let doctor = Concept::atomic("Doctor");
        assert_eq!(
            query_by_enumeration(&kb, &cfg, &ind("john"), &doctor),
            Some(TruthValue::Both)
        );
        assert_eq!(
            query_by_enumeration(&kb, &cfg, &ind("mary"), &doctor),
            Some(TruthValue::Neither)
        );
        assert_eq!(
            query_by_enumeration(&kb, &cfg, &ind("mary"), &Concept::atomic("Patient")),
            Some(TruthValue::True)
        );
    }

    #[test]
    fn oracle_agrees_with_reasoner4_on_small_kbs() {
        use tableau::Config;
        let cases = [
            "A SubClassOf B\nx : A",
            "A SubClassOf B\nx : A\nx : not A",
            "A StrongSubClassOf B\nx : not B",
            "A MaterialSubClassOf B\nx : A\nx : not A",
            "x : A or B\nx : not A",
        ];
        for src in cases {
            let kb = parse_kb4(src).unwrap();
            let cfg = EnumConfig::for_kb(&kb);
            let r = shoin4::Reasoner4::with_config(&kb, Config::default());
            for concept in ["A", "B"] {
                let c = Concept::atomic(concept);
                let brute = entailed_positive_info(&kb, &cfg, &ind("x"), &c);
                let fast = r.has_positive_info(&ind("x"), &c).unwrap();
                assert_eq!(brute, fast, "pos info mismatch on {src:?} / {concept}");
                let brute_n = entailed_negative_info(&kb, &cfg, &ind("x"), &c);
                let fast_n = r.has_negative_info(&ind("x"), &c).unwrap();
                assert_eq!(brute_n, fast_n, "neg info mismatch on {src:?} / {concept}");
            }
        }
    }

    #[test]
    fn inclusion_entailment_matches_corollary7() {
        use shoin4::InclusionKind;
        let kb = parse_kb4("A SubClassOf B\nB SubClassOf C").unwrap();
        // Domain size 1 suffices for refuting/confirming these atomic
        // inclusion entailments (a countermodel can be shrunk to the
        // element witnessing the violation).
        let cfg = EnumConfig::for_kb(&kb);
        let r = shoin4::Reasoner4::new(&kb);
        for (sub, sup) in [("A", "C"), ("C", "A"), ("A", "B"), ("B", "A")] {
            for kind in InclusionKind::ALL {
                let ax = Axiom4::ConceptInclusion(kind, Concept::atomic(sub), Concept::atomic(sup));
                assert_eq!(
                    entailed_axiom_by_enumeration(&kb, &cfg, &ax),
                    r.entails(&ax).unwrap(),
                    "mismatch for {sub} {kind} {sup}"
                );
            }
        }
    }
}
