//! A vendored, dependency-free subset of the `rand` crate API — exactly
//! the surface the workspace generators use (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and the
//! `SliceRandom` helpers).
//!
//! The generator is a SplitMix64 stream: tiny, fast, and — the property
//! the test suite actually relies on — **deterministic per seed across
//! builds and platforms**. The streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine: nothing in the repo depends on
//! the specific values, only on seed-stability.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a half-open (or inclusive) integer range.
    /// Panics on an empty range, as upstream does.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits → a float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range {start}..={end}");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`, `choose_weighted`).
pub mod seq {
    use super::RngCore;
    use std::fmt;

    /// Errors from weighted choice.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WeightedError {
        /// The slice was empty.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "cannot choose from an empty slice"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Weight values accepted by [`SliceRandom::choose_weighted`].
    pub trait Weight: Copy {
        /// The weight as a non-negative float.
        fn to_f64(self) -> f64;
    }

    macro_rules! impl_weight {
        ($($t:ty),*) => {$(
            impl Weight for $t {
                fn to_f64(self) -> f64 {
                    self as f64
                }
            }
        )*};
    }
    impl_weight!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// Random helpers over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// An element chosen with probability proportional to
        /// `weight(element)`.
        fn choose_weighted<R, F, W>(
            &self,
            rng: &mut R,
            weight: F,
        ) -> Result<&Self::Item, WeightedError>
        where
            R: RngCore + ?Sized,
            F: Fn(&Self::Item) -> W,
            W: Weight;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = super::SampleRange::sample(0..self.len(), rng);
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleRange::sample(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose_weighted<R, F, W>(&self, rng: &mut R, weight: F) -> Result<&T, WeightedError>
        where
            R: RngCore + ?Sized,
            F: Fn(&T) -> W,
            W: Weight,
        {
            if self.is_empty() {
                return Err(WeightedError::NoItem);
            }
            let weights: Vec<f64> = self.iter().map(|x| weight(x).to_f64()).collect();
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(WeightedError::InvalidWeight);
            }
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let mut target = unit * total;
            for (x, w) in self.iter().zip(&weights) {
                if target < *w {
                    return Ok(x);
                }
                target -= w;
            }
            // Floating-point slack: fall back to the last positive weight.
            Ok(self
                .iter()
                .zip(&weights)
                .rev()
                .find(|(_, w)| **w > 0.0)
                .expect("total > 0 implies a positive weight")
                .0)
        }
    }
}

pub use seq::WeightedError;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<usize> = (0..32).map(|_| a.gen_range(0..1000usize)).collect();
        let diff: Vec<usize> = (0..32).map(|_| c.gen_range(0..1000usize)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-6i64..6);
            assert!((-6..6).contains(&x));
            let y = rng.gen_range(3u32..4);
            assert_eq!(y, 3);
            let z = rng.gen_range(0..=2usize);
            assert!(z <= 2);
        }
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn weighted_choice_follows_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let kinds = [("a", 0.0f64), ("b", 1.0), ("c", 3.0)];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            let &(name, _) = kinds.choose_weighted(&mut rng, |(_, w)| *w).unwrap();
            match name {
                "a" => counts[0] += 1,
                "b" => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 2, "{counts:?}");
        let none: [(&str, f64); 0] = [];
        assert!(none.choose_weighted(&mut rng, |(_, w)| *w).is_err());
    }
}
