//! Instance-query workload generation.

use dl::axiom::Axiom;
use dl::kb::KnowledgeBase;
use dl::Concept;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Generate `n` instance queries `a : C` drawn uniformly from the KB's
/// signature (individual × atomic concept).
pub fn instance_queries(kb: &KnowledgeBase, n: usize, seed: u64) -> Vec<Axiom> {
    let sig = kb.signature();
    let individuals: Vec<_> = sig.individuals.into_iter().collect();
    let concepts: Vec<_> = sig.concepts.into_iter().collect();
    assert!(
        !individuals.is_empty() && !concepts.is_empty(),
        "query generation needs individuals and concepts in the signature"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = individuals.choose(&mut rng).expect("non-empty").clone();
            let c = concepts.choose(&mut rng).expect("non-empty").clone();
            Axiom::ConceptAssertion(a, Concept::atomic(c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;

    #[test]
    fn queries_are_deterministic_and_in_signature() {
        let kb = parse_kb("A SubClassOf B\nx : A\ny : B").unwrap();
        let q1 = instance_queries(&kb, 10, 3);
        let q2 = instance_queries(&kb, 10, 3);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), 10);
        let sig = kb.signature();
        for q in &q1 {
            let Axiom::ConceptAssertion(a, Concept::Atomic(c)) = q else {
                panic!("unexpected query shape");
            };
            assert!(sig.individuals.contains(a));
            assert!(sig.concepts.contains(c));
        }
    }
}
