//! Exception-taxonomy workloads: penguin-style ontologies at scale.
//!
//! The paper's Example 3 in the large: a base taxonomy of kinds, a
//! default property attached *materially* at the root ("birds generally
//! fly"), and a configurable number of exceptional kinds that deny the
//! property. Classically such ontologies are inconsistent as soon as an
//! exceptional kind has an instance; in SHOIN(D)4 every exception is just
//! a `⊤`-free, `f`-valued fact.

use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};

/// Parameters of the exception-taxonomy generator.
#[derive(Debug, Clone)]
pub struct ExceptionParams {
    /// Number of kinds (subclasses of the root kind).
    pub n_kinds: usize,
    /// Every `exception_every`-th kind denies the default property.
    pub exception_every: usize,
    /// Individuals per kind.
    pub individuals_per_kind: usize,
    /// Read the default-property axiom materially (`↦`, the paper's
    /// recommendation) or internally (`⊏`, which contaminates instead of
    /// excusing).
    pub material_default: bool,
}

impl Default for ExceptionParams {
    fn default() -> Self {
        ExceptionParams {
            n_kinds: 8,
            exception_every: 4,
            individuals_per_kind: 2,
            material_default: true,
        }
    }
}

/// The root kind (`Bird` in the paper's example).
pub fn root_kind() -> ConceptName {
    ConceptName::new("Kind")
}

/// The default property (`Fly`).
pub fn default_property() -> ConceptName {
    ConceptName::new("HasDefault")
}

/// Kind `i`'s class name.
pub fn kind_name(i: usize) -> ConceptName {
    ConceptName::new(format!("Kind{i}"))
}

/// The `k`-th individual of kind `i`.
pub fn member_name(i: usize, k: usize) -> IndividualName {
    IndividualName::new(format!("member_{i}_{k}"))
}

/// Is kind `i` exceptional under these parameters?
pub fn is_exception(p: &ExceptionParams, i: usize) -> bool {
    p.exception_every != 0 && i % p.exception_every == p.exception_every - 1
}

/// Generate the workload.
pub fn exception_kb(p: &ExceptionParams) -> KnowledgeBase4 {
    let mut kb = KnowledgeBase4::new();
    let root = Concept::atomic(root_kind());
    let default = Concept::atomic(default_property());
    // The default rule.
    kb.add(Axiom4::ConceptInclusion(
        if p.material_default {
            InclusionKind::Material
        } else {
            InclusionKind::Internal
        },
        root.clone(),
        default.clone(),
    ));
    for i in 0..p.n_kinds {
        let kind = Concept::atomic(kind_name(i));
        kb.add(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            kind.clone(),
            root.clone(),
        ));
        if is_exception(p, i) {
            kb.add(Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                kind.clone(),
                default.clone().not(),
            ));
        }
        for k in 0..p.individuals_per_kind {
            kb.add(Axiom4::ConceptAssertion(member_name(i, k), kind.clone()));
        }
    }
    kb
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::Reasoner4;

    #[test]
    fn material_reading_is_satisfiable_with_exceptions() {
        let p = ExceptionParams::default();
        let kb = exception_kb(&p);
        let r = Reasoner4::new(&kb);
        assert!(r.is_satisfiable().unwrap());
        // An exceptional member has negative default-property info and no
        // positive info (the material rule excuses it).
        let exceptional = (0..p.n_kinds).find(|&i| is_exception(&p, i)).unwrap();
        let m = member_name(exceptional, 0);
        let d = Concept::atomic(default_property());
        assert!(r.has_negative_info(&m, &d).unwrap());
        assert!(!r.has_positive_info(&m, &d).unwrap());
        // A regular member: the material rule does NOT entail positive
        // info (some models put it in proj⁻(Kind)), matching the paper's
        // cautious semantics of ↦.
        let regular = (0..p.n_kinds).find(|&i| !is_exception(&p, i)).unwrap();
        let m = member_name(regular, 0);
        assert!(!r.has_negative_info(&m, &d).unwrap());
    }

    #[test]
    fn internal_reading_contaminates_exceptional_members() {
        let p = ExceptionParams {
            material_default: false,
            ..Default::default()
        };
        let kb = exception_kb(&p);
        let r = Reasoner4::new(&kb);
        // Still satisfiable (paraconsistency)…
        assert!(r.is_satisfiable().unwrap());
        // …but exceptional members now have ⊤ on the default property:
        // the internal rule forces positive info, their kind forces
        // negative.
        let exceptional = (0..p.n_kinds).find(|&i| is_exception(&p, i)).unwrap();
        let m = member_name(exceptional, 0);
        let d = Concept::atomic(default_property());
        assert_eq!(r.query(&m, &d).unwrap(), fourval::TruthValue::Both);
    }

    #[test]
    fn generator_shape() {
        let p = ExceptionParams {
            n_kinds: 6,
            exception_every: 3,
            individuals_per_kind: 1,
            material_default: true,
        };
        let kb = exception_kb(&p);
        // 1 default rule + 6 kind inclusions + 2 exception axioms + 6
        // members.
        assert_eq!(kb.len(), 1 + 6 + 2 + 6);
        assert!(is_exception(&p, 2) && is_exception(&p, 5));
        assert!(!is_exception(&p, 0));
    }
}
