//! Controlled contradiction injection.
//!
//! Experiments on inconsistency tolerance need KBs where the ground truth
//! is known: which facts were poisoned and which are clean. The injector
//! adds `a : C` and `a : ¬C` pairs for randomly chosen signature
//! individuals/concepts and reports exactly what it did.

use dl::axiom::Axiom;
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A record of one injected contradiction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// The poisoned individual.
    pub individual: IndividualName,
    /// The concept asserted both ways.
    pub concept: ConceptName,
}

/// Add `n` contradictions to the KB (each one `a : C` plus `a : ¬C` over
/// the existing signature). Returns the injected pairs; distinct pairs
/// are chosen while possible.
pub fn inject_contradictions(kb: &mut KnowledgeBase, n: usize, seed: u64) -> Vec<Injection> {
    let sig = kb.signature();
    let individuals: Vec<IndividualName> = sig.individuals.into_iter().collect();
    let concepts: Vec<ConceptName> = sig.concepts.into_iter().collect();
    assert!(
        !individuals.is_empty() && !concepts.is_empty(),
        "injection needs at least one individual and one concept in the signature"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<(usize, usize)> = (0..individuals.len())
        .flat_map(|i| (0..concepts.len()).map(move |c| (i, c)))
        .collect();
    pairs.shuffle(&mut rng);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let (i, c) = pairs[k % pairs.len()];
        let individual = individuals[i].clone();
        let concept = concepts[c].clone();
        kb.add(Axiom::ConceptAssertion(
            individual.clone(),
            Concept::atomic(concept.clone()),
        ));
        kb.add(Axiom::ConceptAssertion(
            individual.clone(),
            Concept::atomic(concept.clone()).not(),
        ));
        out.push(Injection {
            individual,
            concept,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::parser::parse_kb;
    use tableau::Reasoner;

    #[test]
    fn injection_makes_kb_inconsistent() {
        let mut kb = parse_kb("A SubClassOf B\nx : A").unwrap();
        assert!(Reasoner::new(&kb).is_consistent().unwrap());
        let injected = inject_contradictions(&mut kb, 1, 7);
        assert_eq!(injected.len(), 1);
        assert!(!Reasoner::new(&kb).is_consistent().unwrap());
    }

    #[test]
    fn injection_count_and_determinism() {
        let base = parse_kb("A SubClassOf B\nx : A\ny : B").unwrap();
        let mut kb1 = base.clone();
        let mut kb2 = base.clone();
        let i1 = inject_contradictions(&mut kb1, 3, 42);
        let i2 = inject_contradictions(&mut kb2, 3, 42);
        assert_eq!(i1, i2);
        assert_eq!(kb1, kb2);
        assert_eq!(kb1.len(), base.len() + 6);
    }

    #[test]
    fn distinct_targets_while_possible() {
        let mut kb = parse_kb("x : A\ny : B").unwrap();
        let injected = inject_contradictions(&mut kb, 4, 0);
        let unique: std::collections::BTreeSet<_> = injected
            .iter()
            .map(|i| (i.individual.clone(), i.concept.clone()))
            .collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    #[should_panic(expected = "injection needs")]
    fn empty_signature_rejected() {
        let mut kb = KnowledgeBase::new();
        inject_contradictions(&mut kb, 1, 0);
    }
}
