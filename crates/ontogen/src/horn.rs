//! Horn-dominated corpus generation for the consequence-driven fast
//! path (`shoin4::horn`).
//!
//! The generator emits only constructs inside the Horn classical
//! fragment — internal/strong inclusions between conjunctions of
//! (possibly negated) atoms, `∃R.A` bodies, `∀R.A` heads, role
//! hierarchies, transitivity and positive assertions — laid out as one
//! *connected* terminology: concepts form a ladder `C0 ⊑ C1 ⊑ …` with
//! random chords, and individuals form a role chain. Connectivity is
//! the point: a query module drags in a large slice of the KB, so the
//! module-scoped tableau pays per-query search proportional to the KB
//! while the saturation engine pays once and memoizes — exactly the
//! regime `benches/horn_scaling.rs` measures.
//!
//! Two knobs perturb the corpus, with deliberately different routing
//! consequences. `material_rate > 0` plants material inclusions, whose
//! classical images carry body-side negation — non-Horn, so any query
//! module they enter falls back to the tableau; whether they enter at
//! all depends on whether a probe or a negated told fact drags the
//! `C⁻` side of `¬π(¬C) ⊑ π(D)` into the cone (this corpus emits
//! negated ABox assertions, so some do — `tests/horn_parity.rs` pins
//! parity here and the zero-fallback invisibility on a deterministic
//! positive-atom ladder). `disjunction_rate > 0` plants internal
//! inclusions with disjunctive heads: those *are* module-relevant and
//! non-Horn for every query, so any query whose module touches one
//! falls back to the tableau — the knob the routing tests use to force
//! `Stats::horn_fallbacks`.

use dl::axiom::RoleExpr;
use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};

/// Parameters of the Horn corpus generator.
#[derive(Debug, Clone)]
pub struct HornParams {
    /// Number of atomic concept names (`H0…`).
    pub n_concepts: usize,
    /// Number of role names (`p0…`).
    pub n_roles: usize,
    /// Number of individuals (`h0…`).
    pub n_individuals: usize,
    /// TBox inclusions beyond the connecting ladder.
    pub n_tbox: usize,
    /// ABox assertions beyond the connecting role chain.
    pub n_abox: usize,
    /// Fraction of concept inclusions emitted as strong (`→`) rather
    /// than internal (`⊏`); strong images add the contrapositive, so
    /// this exercises the `A⁻`-side rules.
    pub strong_rate: f64,
    /// Fraction of concept inclusions emitted as material (`↦`). Their
    /// images are non-Horn; queries whose modules admit one (because a
    /// probe or negated told fact reaches the image's `C⁻` side) fall
    /// back to the tableau, the rest keep saturating.
    pub material_rate: f64,
    /// Fraction of extra TBox inclusions emitted with disjunctive heads
    /// (`C ⊑ A ⊔ B`, internal). These are module-relevant and non-Horn:
    /// anything above zero plants guaranteed tableau fallbacks.
    pub disjunction_rate: f64,
    /// RNG seed — equal seeds give equal KBs.
    pub seed: u64,
}

impl Default for HornParams {
    fn default() -> Self {
        HornParams {
            n_concepts: 24,
            n_roles: 3,
            n_individuals: 16,
            n_tbox: 40,
            n_abox: 32,
            strong_rate: 0.3,
            material_rate: 0.0,
            disjunction_rate: 0.0,
            seed: 0,
        }
    }
}

fn concept(i: usize) -> Concept {
    Concept::atomic(ConceptName::new(format!("H{i}")))
}
fn role(i: usize) -> RoleName {
    RoleName::new(format!("p{i}"))
}
fn individual(i: usize) -> IndividualName {
    IndividualName::new(format!("h{i}"))
}

/// An inclusion kind drawn by the configured rates (material first, so
/// `material_rate: 1.0` means *every* inclusion is material).
fn kind(rng: &mut StdRng, p: &HornParams) -> InclusionKind {
    if rng.gen_bool(p.material_rate.clamp(0.0, 1.0)) {
        InclusionKind::Material
    } else if rng.gen_bool(p.strong_rate.clamp(0.0, 1.0)) {
        InclusionKind::Strong
    } else {
        InclusionKind::Internal
    }
}

/// A body concept inside the Horn fragment: an atom, a negated atom
/// (absorbed to `A⁻` by the reduction), a two-atom conjunction or an
/// existential over an atom. Strong inclusions contrapose, so their
/// bodies become heads of the contrapositive image: a conjunctive body
/// would turn into a disjunctive head (`π(¬(A⊓B)) = A⁻ ⊔ B⁻`) and leave
/// the fragment — `allow_conj: false` keeps strong bodies to the shapes
/// whose negations are still Horn heads (atoms, negated atoms, `∃R.A`
/// which contraposes to a `∀R.A⁻` head).
fn body(rng: &mut StdRng, p: &HornParams, allow_conj: bool) -> Concept {
    let atom = concept(rng.gen_range(0..p.n_concepts));
    match rng.gen_range(0..5u32) {
        0 => atom.not(),
        1 if allow_conj => atom.and(concept(rng.gen_range(0..p.n_concepts))),
        2 => Concept::some(RoleExpr::named(role(rng.gen_range(0..p.n_roles))), atom),
        _ => atom,
    }
}

/// A head concept inside the Horn fragment: an atom, a negated atom, a
/// conjunction or a universal over an atom.
fn head(rng: &mut StdRng, p: &HornParams) -> Concept {
    let atom = concept(rng.gen_range(0..p.n_concepts));
    match rng.gen_range(0..5u32) {
        0 => atom.not(),
        1 => atom.and(concept(rng.gen_range(0..p.n_concepts))),
        2 => Concept::all(RoleExpr::named(role(rng.gen_range(0..p.n_roles))), atom),
        _ => atom,
    }
}

/// Generate a connected, Horn-dominated SHOIN(D)4 KB.
pub fn horn_kb4(p: &HornParams) -> KnowledgeBase4 {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut kb = KnowledgeBase4::new();
    // The connecting ladder: C_i ⊑ C_{i+1} keeps every concept's module
    // reaching the whole terminology.
    for i in 0..p.n_concepts.saturating_sub(1) {
        kb.add(Axiom4::ConceptInclusion(
            kind(&mut rng, p),
            concept(i),
            concept(i + 1),
        ));
    }
    // Random chords, existential bodies and universal heads on top.
    for _ in 0..p.n_tbox {
        match rng.gen_range(0..8u32) {
            0 if p.n_roles >= 2 => {
                let a = rng.gen_range(0..p.n_roles);
                let b = rng.gen_range(0..p.n_roles);
                kb.add(Axiom4::RoleInclusion(
                    kind(&mut rng, p),
                    RoleExpr::named(role(a)),
                    RoleExpr::named(role(b)),
                ));
            }
            1 => kb.add(Axiom4::Transitive(role(rng.gen_range(0..p.n_roles)))),
            _ => {
                if rng.gen_bool(p.disjunction_rate.clamp(0.0, 1.0)) {
                    let left = concept(rng.gen_range(0..p.n_concepts));
                    let right = concept(rng.gen_range(0..p.n_concepts));
                    let b = body(&mut rng, p, true);
                    kb.add(Axiom4::ConceptInclusion(
                        InclusionKind::Internal,
                        b,
                        left.or(right),
                    ));
                } else {
                    let k = kind(&mut rng, p);
                    let b = body(&mut rng, p, k != InclusionKind::Strong);
                    kb.add(Axiom4::ConceptInclusion(k, b, head(&mut rng, p)));
                }
            }
        }
    }
    // The connecting role chain h0 → h1 → … plus a seed membership, so
    // instance queries propagate along the ABox too.
    for i in 0..p.n_individuals.saturating_sub(1) {
        kb.add(Axiom4::RoleAssertion(
            role(i % p.n_roles.max(1)),
            individual(i),
            individual(i + 1),
        ));
    }
    if p.n_individuals > 0 && p.n_concepts > 0 {
        kb.add(Axiom4::ConceptAssertion(individual(0), concept(0)));
    }
    for _ in 0..p.n_abox {
        let a = individual(rng.gen_range(0..p.n_individuals.max(1)));
        if rng.gen_bool(0.7) {
            let atom = concept(rng.gen_range(0..p.n_concepts));
            let c = if rng.gen_bool(0.2) { atom.not() } else { atom };
            kb.add(Axiom4::ConceptAssertion(a, c));
        } else {
            let b = individual(rng.gen_range(0..p.n_individuals.max(1)));
            kb.add(Axiom4::RoleAssertion(
                role(rng.gen_range(0..p.n_roles)),
                a,
                b,
            ));
        }
    }
    kb
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::dataflow::ModuleExtractor;
    use shoin4::horn::compile;

    #[test]
    fn pure_corpus_is_horn_and_deterministic() {
        let p = HornParams::default();
        let kb = horn_kb4(&p);
        assert_eq!(kb, horn_kb4(&p));
        let ex = ModuleExtractor::new(&kb);
        let images: Vec<_> = (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect();
        assert!(
            compile(images.iter()).is_some(),
            "material_rate 0 must generate a fully Horn classical image"
        );
    }

    #[test]
    fn material_rate_plants_non_horn_modules() {
        let p = HornParams {
            material_rate: 1.0,
            ..HornParams::default()
        };
        let kb = horn_kb4(&p);
        let ex = ModuleExtractor::new(&kb);
        let images: Vec<_> = (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect();
        assert!(compile(images.iter()).is_none());
    }

    #[test]
    fn disjunction_rate_plants_non_horn_modules() {
        let p = HornParams {
            disjunction_rate: 1.0,
            ..HornParams::default()
        };
        let kb = horn_kb4(&p);
        let ex = ModuleExtractor::new(&kb);
        let images: Vec<_> = (0..kb.len()).flat_map(|i| ex.images(i).to_vec()).collect();
        assert!(compile(images.iter()).is_none());
    }

    #[test]
    fn seeds_vary_the_corpus() {
        let a = horn_kb4(&HornParams::default());
        let b = horn_kb4(&HornParams {
            seed: 1,
            ..HornParams::default()
        });
        assert_ne!(a, b);
    }
}
