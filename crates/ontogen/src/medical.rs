//! The medical access-control workload — the paper's motivating scenario
//! (§1 and Example 2) at configurable scale.
//!
//! `n_teams` hospital teams alternate between permitting and forbidding
//! access to patient records; `n_staff` staff members join `memberships`
//! teams each. A `conflict_fraction` of the staff is deliberately placed
//! in one permitting and one forbidding team — each such member is a
//! "john" from Example 2: classically explosive, four-valued localized.

use dl::axiom::Axiom;
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the medical workload.
#[derive(Debug, Clone)]
pub struct MedicalParams {
    /// Number of teams (≥ 2; even indices permit, odd forbid).
    pub n_teams: usize,
    /// Number of staff members.
    pub n_staff: usize,
    /// Fraction of staff placed in conflicting teams.
    pub conflict_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MedicalParams {
    fn default() -> Self {
        MedicalParams {
            n_teams: 4,
            n_staff: 10,
            conflict_fraction: 0.2,
            seed: 0,
        }
    }
}

/// The permission class every team relates to.
pub fn permission_class() -> ConceptName {
    ConceptName::new("ReadPatientRecordTeam")
}

/// Team class name.
pub fn team_name(i: usize) -> ConceptName {
    ConceptName::new(format!("Team{i}"))
}

/// Staff individual name.
pub fn staff_name(i: usize) -> IndividualName {
    IndividualName::new(format!("staff{i}"))
}

/// Generate the workload; returns the KB and the indices of the staff
/// with injected conflicts (for the experiment's query split).
pub fn medical_kb(p: &MedicalParams) -> (KnowledgeBase, Vec<usize>) {
    assert!(p.n_teams >= 2, "need at least one permit/forbid pair");
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut kb = KnowledgeBase::new();
    let perm = Concept::atomic(permission_class());
    for t in 0..p.n_teams {
        let team = Concept::atomic(team_name(t));
        let rhs = if t % 2 == 0 {
            perm.clone()
        } else {
            perm.clone().not()
        };
        kb.add(Axiom::ConceptInclusion(team, rhs));
    }
    let mut conflicted = Vec::new();
    for s in 0..p.n_staff {
        let in_conflict = rng.gen_bool(p.conflict_fraction);
        if in_conflict {
            // One permitting, one forbidding team.
            let permit = 2 * rng.gen_range(0..p.n_teams / 2);
            let forbid_options = p.n_teams / 2;
            let forbid = 2 * rng.gen_range(0..forbid_options) + 1;
            kb.add(Axiom::ConceptAssertion(
                staff_name(s),
                Concept::atomic(team_name(permit)),
            ));
            kb.add(Axiom::ConceptAssertion(
                staff_name(s),
                Concept::atomic(team_name(forbid)),
            ));
            conflicted.push(s);
        } else {
            let team = rng.gen_range(0..p.n_teams);
            kb.add(Axiom::ConceptAssertion(
                staff_name(s),
                Concept::atomic(team_name(team)),
            ));
        }
    }
    (kb, conflicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableau::Reasoner;

    #[test]
    fn no_conflicts_means_consistent() {
        let (kb, conflicted) = medical_kb(&MedicalParams {
            conflict_fraction: 0.0,
            ..Default::default()
        });
        assert!(conflicted.is_empty());
        assert!(Reasoner::new(&kb).is_consistent().unwrap());
    }

    #[test]
    fn full_conflicts_mean_inconsistent() {
        let (kb, conflicted) = medical_kb(&MedicalParams {
            conflict_fraction: 1.0,
            n_staff: 3,
            ..Default::default()
        });
        assert_eq!(conflicted.len(), 3);
        assert!(!Reasoner::new(&kb).is_consistent().unwrap());
    }

    #[test]
    fn generation_is_deterministic() {
        let p = MedicalParams::default();
        assert_eq!(medical_kb(&p).0, medical_kb(&p).0);
    }

    #[test]
    fn conflicted_staff_join_opposing_teams() {
        let (kb, conflicted) = medical_kb(&MedicalParams {
            conflict_fraction: 1.0,
            n_staff: 1,
            ..Default::default()
        });
        assert_eq!(conflicted, vec![0]);
        let teams: Vec<usize> = kb
            .abox()
            .filter_map(|ax| match ax {
                Axiom::ConceptAssertion(_, Concept::Atomic(name)) => name
                    .as_str()
                    .strip_prefix("Team")
                    .and_then(|s| s.parse().ok()),
                _ => None,
            })
            .collect();
        assert_eq!(teams.len(), 2);
        assert_eq!(teams[0] % 2, 0);
        assert_eq!(teams[1] % 2, 1);
    }
}
