//! Churn workloads for incremental reasoning: a base modular KB plus a
//! deterministic interleaving of mutations and queries.
//!
//! The mutations are *localized* — they touch only the `hot_island`'s
//! namespace — while queries range over every island. That is the
//! workload shape `shoin4::incremental` is built for: a delta in one
//! island must leave every other island's cached module, Horn program,
//! and entailment rows warm, so sustained mutate+query throughput stays
//! far above rebuild-per-mutation. The generator is the ground truth
//! for both the `incremental_churn` benchmark and the differential
//! parity suite (`tests/incremental_parity.rs`).

use crate::modular::{modular_kb4, ModularParams, PlantedPartition};
use dl::name::IndividualName;
use dl::Concept;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shoin4::{Axiom4, KnowledgeBase4};

/// Knobs for the churn generator.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// RNG seed for the op interleaving (independent of the base-KB
    /// shuffle seed in `modular`).
    pub seed: u64,
    /// The base KB: disjoint islands with known membership.
    pub modular: ModularParams,
    /// Total operations (mutations + queries).
    pub ops: usize,
    /// Percentage of ops that mutate (the rest query).
    pub mutation_percent: usize,
    /// Island whose namespace absorbs every mutation.
    pub hot_island: usize,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            seed: 0,
            modular: ModularParams::default(),
            ops: 200,
            mutation_percent: 20,
            hot_island: 0,
        }
    }
}

/// One step of a churn trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// Add this axiom.
    Add(Axiom4),
    /// Retract this axiom (always a previously added one, so the trace
    /// never retracts base axioms and the KB size stays bounded).
    Retract(Axiom4),
    /// Ask the four-valued membership question `a : C`.
    Query(IndividualName, Concept),
}

/// Generate a base KB and a churn trace over it. Deterministic in the
/// params; mutations stay inside `hot_island`'s namespace and are
/// balanced add/retract pairs over fresh assertions.
pub fn churn_workload(p: &ChurnParams) -> (KnowledgeBase4, PlantedPartition, Vec<ChurnOp>) {
    let (kb, truth) = modular_kb4(&p.modular);
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xC4A2);
    let hot = p.hot_island.min(p.modular.n_islands.saturating_sub(1));
    let hot_concepts = &truth.island_concepts[hot];

    // Mutations are add/retract pairs over assertions that do not exist
    // in the base KB: fresh individuals `I{hot}fresh{n}` joining hot
    // concepts.
    let mut added: Vec<Axiom4> = Vec::new();
    let mut fresh = 0usize;
    let mut ops = Vec::with_capacity(p.ops);
    for _ in 0..p.ops {
        if rng.gen_range(0..100usize) < p.mutation_percent {
            // Retract roughly half the time once something is live, so
            // the KB hovers around its base size.
            if !added.is_empty() && rng.gen_bool(0.5) {
                let i = rng.gen_range(0..added.len());
                ops.push(ChurnOp::Retract(added.swap_remove(i)));
            } else {
                let ind = IndividualName::new(format!("I{hot}fresh{fresh}"));
                fresh += 1;
                let c = &hot_concepts[rng.gen_range(0..hot_concepts.len())];
                let ax = Axiom4::ConceptAssertion(ind, Concept::Atomic(c.clone()));
                added.push(ax.clone());
                ops.push(ChurnOp::Add(ax));
            }
        } else {
            // Queries range over *all* islands; compound goals skip the
            // told fast path and keep the module machinery honest.
            let island = rng.gen_range(0..p.modular.n_islands);
            let concepts = &truth.island_concepts[island];
            let inds = &truth.island_individuals[island];
            let a = inds[rng.gen_range(0..inds.len())].clone();
            let j = rng.gen_range(0..concepts.len());
            let atom = Concept::Atomic(concepts[j].clone());
            let goal = if rng.gen_bool(0.5) && j + 1 < concepts.len() {
                atom.and(Concept::Atomic(concepts[j + 1].clone()))
            } else {
                atom
            };
            ops.push(ChurnOp::Query(a, goal));
        }
    }
    // Occasionally query the fresh hot individuals too, so mutation
    // effects are actually observed: rewrite a suffix of pure queries.
    if fresh > 0 {
        for op in ops.iter_mut().rev().take(p.ops / 10) {
            if let ChurnOp::Query(a, _) = op {
                if rng.gen_bool(0.3) {
                    *a = IndividualName::new(format!("I{hot}fresh{}", rng.gen_range(0..fresh)));
                }
            }
        }
    }
    (kb, truth, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_mutations_stay_hot() {
        let p = ChurnParams::default();
        let (kb, _, ops) = churn_workload(&p);
        assert_eq!(churn_workload(&p).2, ops);
        assert_eq!(ops.len(), p.ops);
        let mutations = ops
            .iter()
            .filter(|op| !matches!(op, ChurnOp::Query(..)))
            .count();
        assert!(mutations > 0, "no mutations generated");
        for op in &ops {
            if let ChurnOp::Add(ax) | ChurnOp::Retract(ax) = op {
                let sig = KnowledgeBase4::from_axioms([ax.clone()]).signature();
                assert!(
                    sig.concepts.iter().all(|c| c.as_str().starts_with("I0C"))
                        && sig.individuals.iter().all(|a| a.as_str().starts_with("I0")),
                    "mutation escaped the hot island: {ax:?}"
                );
            }
        }
        assert!(!kb.is_empty());
    }

    #[test]
    fn retracts_only_remove_prior_adds() {
        let (_, _, ops) = churn_workload(&ChurnParams {
            ops: 400,
            mutation_percent: 50,
            ..ChurnParams::default()
        });
        let mut live: Vec<&Axiom4> = Vec::new();
        for op in &ops {
            match op {
                ChurnOp::Add(ax) => live.push(ax),
                ChurnOp::Retract(ax) => {
                    let pos = live
                        .iter()
                        .position(|l| *l == ax)
                        .expect("retract of never-added axiom");
                    live.remove(pos);
                }
                ChurnOp::Query(..) => {}
            }
        }
    }
}
