//! Tree-shaped taxonomy generation — the "ontology-shaped" workload:
//! a subsumption tree of configurable depth and branching, optional
//! sibling disjointness, and individuals asserted at the leaves.

use dl::axiom::Axiom;
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName};
use dl::Concept;

/// Parameters of the taxonomy generator.
#[derive(Debug, Clone)]
pub struct TaxonomyParams {
    /// Depth of the tree (root at depth 0).
    pub depth: usize,
    /// Children per node.
    pub branching: usize,
    /// Add pairwise disjointness between siblings.
    pub sibling_disjointness: bool,
    /// Individuals per leaf class.
    pub individuals_per_leaf: usize,
}

impl Default for TaxonomyParams {
    fn default() -> Self {
        TaxonomyParams {
            depth: 3,
            branching: 2,
            sibling_disjointness: true,
            individuals_per_leaf: 1,
        }
    }
}

/// The class name at `(level, index)`.
pub fn class_name(level: usize, index: usize) -> ConceptName {
    ConceptName::new(format!("N{level}_{index}"))
}

/// Generate the taxonomy KB. Classes are `N<level>_<index>`; node
/// `N(l+1)_(b·i+j) ⊑ N l_i`.
pub fn taxonomy_kb(p: &TaxonomyParams) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for level in 0..p.depth {
        let width = p.branching.pow(level as u32);
        for i in 0..width {
            let parent = Concept::atomic(class_name(level, i));
            let children: Vec<Concept> = (0..p.branching)
                .map(|j| Concept::atomic(class_name(level + 1, p.branching * i + j)))
                .collect();
            for child in &children {
                kb.add(Axiom::ConceptInclusion(child.clone(), parent.clone()));
            }
            if p.sibling_disjointness {
                for (a, left) in children.iter().enumerate() {
                    for right in children.iter().skip(a + 1) {
                        kb.add(Axiom::disjoint(left.clone(), right.clone()));
                    }
                }
            }
        }
    }
    let leaf_level = p.depth;
    let leaf_count = p.branching.pow(leaf_level as u32);
    for i in 0..leaf_count {
        for k in 0..p.individuals_per_leaf {
            kb.add(Axiom::ConceptAssertion(
                IndividualName::new(format!("ind_{i}_{k}")),
                Concept::atomic(class_name(leaf_level, i)),
            ));
        }
    }
    kb
}

/// Number of classes in a taxonomy of the given shape.
pub fn class_count(p: &TaxonomyParams) -> usize {
    (0..=p.depth).map(|l| p.branching.pow(l as u32)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl::IndividualName;
    use tableau::Reasoner;

    #[test]
    fn shape_matches_parameters() {
        let p = TaxonomyParams {
            depth: 2,
            branching: 2,
            sibling_disjointness: false,
            individuals_per_leaf: 1,
        };
        let kb = taxonomy_kb(&p);
        // 2 + 4 subclass axioms, 4 leaf individuals.
        assert_eq!(kb.tbox().count(), 6);
        assert_eq!(kb.abox().count(), 4);
        assert_eq!(class_count(&p), 7);
    }

    #[test]
    fn taxonomy_is_consistent_and_subsumption_works() {
        let kb = taxonomy_kb(&TaxonomyParams::default());
        let mut r = Reasoner::new(&kb);
        assert!(r.is_consistent().unwrap());
        // A leaf individual is an instance of the root.
        assert!(r
            .is_instance_of(
                &IndividualName::new("ind_0_0"),
                &Concept::atomic(class_name(0, 0))
            )
            .unwrap());
        // Leaf subsumed by its ancestor chain.
        assert!(r
            .is_subsumed_by(
                &Concept::atomic(class_name(3, 0)),
                &Concept::atomic(class_name(1, 0))
            )
            .unwrap());
    }

    #[test]
    fn disjoint_siblings_conflict() {
        let kb = taxonomy_kb(&TaxonomyParams::default());
        let mut r = Reasoner::new(&kb);
        // Being in two disjoint siblings is unsatisfiable.
        let c = Concept::atomic(class_name(1, 0)).and(Concept::atomic(class_name(1, 1)));
        assert!(!r.is_concept_satisfiable(&c).unwrap());
    }
}
