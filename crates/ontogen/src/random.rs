//! Seeded random knowledge-base generation.

use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use shoin4::{InclusionKind, KnowledgeBase4};

/// Parameters of the random generator.
#[derive(Debug, Clone)]
pub struct RandomParams {
    /// Number of atomic concept names (`C0…`).
    pub n_concepts: usize,
    /// Number of role names (`r0…`).
    pub n_roles: usize,
    /// Number of individuals (`i0…`).
    pub n_individuals: usize,
    /// Number of TBox inclusions.
    pub n_tbox: usize,
    /// Number of ABox assertions (mix of concept and role assertions).
    pub n_abox: usize,
    /// Maximum concept nesting depth.
    pub max_depth: usize,
    /// Allow `≥n`/`≤n` restrictions.
    pub number_restrictions: bool,
    /// Allow inverse roles inside restrictions.
    pub inverse_roles: bool,
    /// RNG seed — equal seeds give equal KBs.
    pub seed: u64,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            n_concepts: 8,
            n_roles: 3,
            n_individuals: 6,
            n_tbox: 10,
            n_abox: 12,
            max_depth: 2,
            number_restrictions: true,
            inverse_roles: true,
            seed: 0,
        }
    }
}

fn concept_name(i: usize) -> ConceptName {
    ConceptName::new(format!("C{i}"))
}
fn role_name(i: usize) -> RoleName {
    RoleName::new(format!("r{i}"))
}
fn individual_name(i: usize) -> IndividualName {
    IndividualName::new(format!("i{i}"))
}

fn random_role(rng: &mut StdRng, p: &RandomParams) -> RoleExpr {
    let r = RoleExpr::named(role_name(rng.gen_range(0..p.n_roles)));
    if p.inverse_roles && rng.gen_bool(0.2) {
        r.inverse()
    } else {
        r
    }
}

/// A random concept of at most the given depth.
pub fn random_concept(rng: &mut StdRng, p: &RandomParams, depth: usize) -> Concept {
    if depth == 0 {
        let atom = Concept::atomic(concept_name(rng.gen_range(0..p.n_concepts)));
        return if rng.gen_bool(0.25) { atom.not() } else { atom };
    }
    match rng.gen_range(0..if p.number_restrictions { 6 } else { 5 }) {
        0 => random_concept(rng, p, depth - 1).and(random_concept(rng, p, depth - 1)),
        1 => random_concept(rng, p, depth - 1).or(random_concept(rng, p, depth - 1)),
        2 => random_concept(rng, p, depth - 1).not(),
        3 => Concept::some(random_role(rng, p), random_concept(rng, p, depth - 1)),
        4 => Concept::all(random_role(rng, p), random_concept(rng, p, depth - 1)),
        _ => {
            let n = rng.gen_range(0..3u32);
            if rng.gen_bool(0.5) {
                Concept::at_least(n.max(1), random_role(rng, p))
            } else {
                Concept::at_most(n, random_role(rng, p))
            }
        }
    }
}

/// A random classical KB.
pub fn random_kb(p: &RandomParams) -> KnowledgeBase {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut kb = KnowledgeBase::new();
    for _ in 0..p.n_tbox {
        // Left side shallow (atomic-biased, like real ontologies), right
        // side up to max depth.
        let lhs = if rng.gen_bool(0.7) {
            Concept::atomic(concept_name(rng.gen_range(0..p.n_concepts)))
        } else {
            random_concept(&mut rng, p, 1)
        };
        let rhs = random_concept(&mut rng, p, p.max_depth);
        kb.add(Axiom::ConceptInclusion(lhs, rhs));
    }
    for _ in 0..p.n_abox {
        if rng.gen_bool(0.55) {
            let a = individual_name(rng.gen_range(0..p.n_individuals));
            let c = random_concept(&mut rng, p, 1);
            kb.add(Axiom::ConceptAssertion(a, c));
        } else {
            let r = role_name(rng.gen_range(0..p.n_roles));
            let a = individual_name(rng.gen_range(0..p.n_individuals));
            let b = individual_name(rng.gen_range(0..p.n_individuals));
            kb.add(Axiom::RoleAssertion(r, a, b));
        }
    }
    kb
}

/// A random SHOIN(D)4 KB: the classical generation with each inclusion
/// assigned an inclusion kind by the given weights
/// `(material, internal, strong)`.
pub fn random_kb4(p: &RandomParams, kind_weights: (f64, f64, f64)) -> KnowledgeBase4 {
    let kb = random_kb(p);
    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_add(0x5EED));
    let kinds = [
        (InclusionKind::Material, kind_weights.0),
        (InclusionKind::Internal, kind_weights.1),
        (InclusionKind::Strong, kind_weights.2),
    ];
    KnowledgeBase4::from_axioms(kb.axioms().iter().map(|ax| {
        let kind = kinds
            .choose_weighted(&mut rng, |(_, w)| *w)
            .expect("non-empty weights")
            .0;
        shoin4::Axiom4::from_classical(ax, kind)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = RandomParams::default();
        assert_eq!(random_kb(&p), random_kb(&p));
        let p2 = RandomParams {
            seed: 1,
            ..RandomParams::default()
        };
        assert_ne!(random_kb(&p), random_kb(&p2));
    }

    #[test]
    fn sizes_match_parameters() {
        let p = RandomParams {
            n_tbox: 7,
            n_abox: 5,
            ..RandomParams::default()
        };
        let kb = random_kb(&p);
        assert_eq!(kb.tbox().count(), 7);
        assert_eq!(kb.abox().count(), 5);
    }

    #[test]
    fn depth_is_bounded() {
        let p = RandomParams {
            max_depth: 3,
            n_tbox: 30,
            ..RandomParams::default()
        };
        let kb = random_kb(&p);
        for ax in kb.tbox() {
            if let Axiom::ConceptInclusion(_, rhs) = ax {
                assert!(rhs.modal_depth() <= 3);
            }
        }
    }

    #[test]
    fn kind_weights_respected_in_expectation() {
        let p = RandomParams {
            n_tbox: 60,
            n_abox: 0,
            ..RandomParams::default()
        };
        let kb4 = random_kb4(&p, (1.0, 0.0, 0.0));
        assert!(kb4.axioms().iter().all(|ax| matches!(
            ax,
            shoin4::Axiom4::ConceptInclusion(InclusionKind::Material, ..)
        )));
        let kb4 = random_kb4(&p, (0.0, 0.0, 1.0));
        assert!(kb4.axioms().iter().all(|ax| matches!(
            ax,
            shoin4::Axiom4::ConceptInclusion(InclusionKind::Strong, ..)
        )));
    }

    #[test]
    fn no_number_restrictions_when_disabled() {
        let p = RandomParams {
            number_restrictions: false,
            n_tbox: 40,
            max_depth: 3,
            ..RandomParams::default()
        };
        let kb = random_kb(&p);
        fn has_num(c: &Concept) -> bool {
            let mut found = false;
            c.for_each_subconcept(&mut |sc| {
                if matches!(sc, Concept::AtLeast(..) | Concept::AtMost(..)) {
                    found = true;
                }
            });
            found
        }
        for ax in kb.axioms() {
            match ax {
                Axiom::ConceptInclusion(l, r) => {
                    assert!(!has_num(l) && !has_num(r));
                }
                Axiom::ConceptAssertion(_, c) => assert!(!has_num(c)),
                _ => {}
            }
        }
    }
}
