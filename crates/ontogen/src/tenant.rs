//! Multi-tenant fleets for the serving-layer benchmarks: many small
//! KBs, a controllable fraction of which embed an *identical* "core"
//! island alongside tenant-private islands.
//!
//! The core island is the planted ground truth for cross-tenant cache
//! sharing (`shoin4::serve::SharedModuleCache`): every member tenant
//! carries axiom-for-axiom the same `Core*` module, so queries over
//! core concepts must produce structural-key hits once the first
//! member has built the module's engine. Private islands use a
//! per-tenant namespace (`T{t}I{j}C{k}`), so they can never collide in
//! the shared cache — a fleet with `shared_core_rate: 0.0` is the
//! zero-sharing baseline.
//!
//! Axiom order is shuffled per tenant (seeded), which doubles as an
//! exercise of the structural key's order invariance: members share
//! cache entries even though their files list the core in different
//! orders.

use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};

/// Knobs for the fleet generator.
#[derive(Debug, Clone)]
pub struct TenantFleetParams {
    /// RNG seed (member selection and per-tenant axiom shuffles).
    pub seed: u64,
    /// Number of tenants (`tenant0` … `tenant{n-1}`).
    pub tenants: usize,
    /// Fraction of tenants carrying the shared core island; the member
    /// count is `floor(rate * tenants)`, members chosen by seeded
    /// shuffle. `0.0` disables sharing, `1.0` makes every tenant a
    /// member.
    pub shared_core_rate: f64,
    /// Subsumption-chain length of the core island.
    pub core_tbox: usize,
    /// Assertions in the core island.
    pub core_abox: usize,
    /// Tenant-private islands per tenant.
    pub private_islands: usize,
    /// Subsumption-chain length per private island.
    pub island_tbox: usize,
    /// Assertions per private island.
    pub island_abox: usize,
}

impl Default for TenantFleetParams {
    fn default() -> Self {
        TenantFleetParams {
            seed: 0,
            tenants: 8,
            shared_core_rate: 0.5,
            core_tbox: 6,
            core_abox: 8,
            private_islands: 2,
            island_tbox: 4,
            island_abox: 6,
        }
    }
}

/// A generated fleet plus its sharing ground truth.
#[derive(Debug, Clone)]
pub struct TenantFleet {
    /// `(tenant id, KB)` pairs, id `tenant{i}`.
    pub tenants: Vec<(String, KnowledgeBase4)>,
    /// Indices (into `tenants`) of the core members, sorted.
    pub core_members: Vec<usize>,
    /// Core-island concepts, chain order (`CoreC0` …).
    pub core_concepts: Vec<ConceptName>,
    /// Core-island individuals (`Corex0` …).
    pub core_individuals: Vec<IndividualName>,
}

/// One namespaced island: a kind-cycled subsumption chain plus mixed
/// membership/role assertions, exactly the [`crate::modular`] shape but
/// under an arbitrary prefix so callers control name collisions.
fn island(prefix: &str, tbox: usize, abox: usize) -> Vec<Axiom4> {
    let atom = |j: usize| Concept::atomic(format!("{prefix}C{j}"));
    let ind = |k: usize| IndividualName::new(format!("{prefix}x{k}"));
    let role = RoleName::new(format!("{prefix}r"));
    let mut axioms = Vec::with_capacity(tbox + abox);
    for j in 0..tbox {
        let kind = if j % 5 == 4 {
            InclusionKind::Material
        } else if j % 3 == 2 {
            InclusionKind::Strong
        } else {
            InclusionKind::Internal
        };
        axioms.push(Axiom4::ConceptInclusion(kind, atom(j), atom(j + 1)));
    }
    let n_inds = (abox / 2).max(2);
    for k in 0..abox {
        let ax = if k % 4 == 3 {
            Axiom4::RoleAssertion(role.clone(), ind(k % n_inds), ind((k + 1) % n_inds))
        } else {
            Axiom4::ConceptAssertion(ind(k % n_inds), atom(k % (tbox + 1)))
        };
        axioms.push(ax);
    }
    axioms
}

/// Generate a fleet (deterministic in `params`).
pub fn tenant_fleet(p: &TenantFleetParams) -> TenantFleet {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let n_members = ((p.shared_core_rate * p.tenants as f64).floor() as usize).min(p.tenants);
    let mut ids: Vec<usize> = (0..p.tenants).collect();
    ids.shuffle(&mut rng);
    let mut core_members: Vec<usize> = ids.into_iter().take(n_members).collect();
    core_members.sort_unstable();

    let core = island("Core", p.core_tbox, p.core_abox);
    let mut tenants = Vec::with_capacity(p.tenants);
    for t in 0..p.tenants {
        let mut axioms = Vec::new();
        if core_members.contains(&t) {
            axioms.extend(core.iter().cloned());
        }
        for j in 0..p.private_islands {
            axioms.extend(island(&format!("T{t}I{j}"), p.island_tbox, p.island_abox));
        }
        axioms.shuffle(&mut rng);
        tenants.push((format!("tenant{t}"), KnowledgeBase4::from_axioms(axioms)));
    }

    let n_core_inds = (p.core_abox / 2).max(2);
    TenantFleet {
        tenants,
        core_members,
        core_concepts: (0..=p.core_tbox)
            .map(|j| ConceptName::new(format!("CoreC{j}")))
            .collect(),
        core_individuals: (0..n_core_inds)
            .map(|k| IndividualName::new(format!("Corex{k}")))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn core_axioms(kb: &KnowledgeBase4) -> BTreeSet<String> {
        kb.axioms()
            .iter()
            .filter(|ax| format!("{ax:?}").contains("Core"))
            .map(|ax| format!("{ax:?}"))
            .collect()
    }

    #[test]
    fn fleet_is_deterministic_and_member_count_follows_rate() {
        let p = TenantFleetParams::default();
        let fleet = tenant_fleet(&p);
        assert_eq!(fleet.tenants.len(), 8);
        assert_eq!(fleet.core_members.len(), 4); // floor(0.5 * 8)
        let again = tenant_fleet(&p);
        assert_eq!(fleet.core_members, again.core_members);
        for (a, b) in fleet.tenants.iter().zip(&again.tenants) {
            assert_eq!(a, b);
        }
        let reseeded = tenant_fleet(&TenantFleetParams { seed: 7, ..p });
        assert_ne!(fleet.core_members, reseeded.core_members);
    }

    #[test]
    fn members_share_an_identical_core_and_outsiders_have_none() {
        let fleet = tenant_fleet(&TenantFleetParams::default());
        let reference = core_axioms(&fleet.tenants[fleet.core_members[0]].1);
        assert!(!reference.is_empty());
        for t in 0..fleet.tenants.len() {
            let core = core_axioms(&fleet.tenants[t].1);
            if fleet.core_members.contains(&t) {
                assert_eq!(core, reference, "tenant {t} diverges from the core");
            } else {
                assert!(core.is_empty(), "tenant {t} should have no core axioms");
            }
        }
    }

    #[test]
    fn private_islands_never_collide_across_tenants() {
        let fleet = tenant_fleet(&TenantFleetParams::default());
        let private_sig = |t: usize| {
            let axioms: Vec<Axiom4> = fleet.tenants[t]
                .1
                .axioms()
                .iter()
                .filter(|ax| !format!("{ax:?}").contains("Core"))
                .cloned()
                .collect();
            assert!(!axioms.is_empty());
            KnowledgeBase4::from_axioms(axioms).signature()
        };
        let a = private_sig(0);
        let b = private_sig(1);
        assert!(a.concepts.intersection(&b.concepts).next().is_none());
        assert!(a.roles.intersection(&b.roles).next().is_none());
        assert!(a.individuals.intersection(&b.individuals).next().is_none());
    }

    #[test]
    fn rate_extremes_give_empty_and_full_membership() {
        let none = tenant_fleet(&TenantFleetParams {
            shared_core_rate: 0.0,
            ..TenantFleetParams::default()
        });
        assert!(none.core_members.is_empty());
        let all = tenant_fleet(&TenantFleetParams {
            shared_core_rate: 1.0,
            ..TenantFleetParams::default()
        });
        assert_eq!(all.core_members, (0..8).collect::<Vec<_>>());
    }
}
