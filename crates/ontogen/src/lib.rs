//! Synthetic ontology and workload generation.
//!
//! The paper evaluates SHOIN(D)4 only on worked examples; a credible
//! systems artifact needs workloads. This crate generates them,
//! deterministically from a seed:
//!
//! * [`random`] — random SHOIN concepts, TBoxes and ABoxes with tunable
//!   constructor mix, depth and size;
//! * [`taxonomy`] — tree-shaped subsumption hierarchies with sibling
//!   disjointness (the classic "ontology-shaped" workload);
//! * [`medical`] — the access-control scenario of the paper's
//!   introduction and Example 2, scaled: teams with conflicting
//!   permissions and staff with overlapping memberships;
//! * [`inject`] — controlled contradiction injection into any KB, with a
//!   record of what was injected (so experiments can distinguish poisoned
//!   from clean queries);
//! * [`modular`] — disjoint axiom islands with planted ground-truth
//!   partitions and per-island contradictions (the workload for the
//!   signature-dataflow analysis and module-scoped querying);
//! * [`queries`] — instance-query workloads over a KB's signature;
//! * [`tenant`] — multi-tenant fleets with a planted shared "core"
//!   island (ground truth for cross-tenant cache sharing in the
//!   serving layer);
//! * [`mod@hardness_mix`] — labeled KBs spanning the static-hardness
//!   spectrum (Horn chains, disjunctive residue, `∃`-doubling towers),
//!   the calibration corpus for the search-cost predictor.

pub mod churn;
pub mod exceptions;
pub mod hardness_mix;
pub mod horn;
pub mod inject;
pub mod lintseed;
pub mod medical;
pub mod modular;
pub mod queries;
pub mod random;
pub mod taxonomy;
pub mod tenant;
pub mod university;

pub use hardness_mix::{hardness_mix, HardnessMixParams, HardnessShape, LabeledKb};
pub use inject::{inject_contradictions, Injection};
pub use lintseed::{lint_seeded_kb4, lint_seeded_kb4_sized, LintSeedParams, PlantedFindings};
pub use medical::{medical_kb, MedicalParams};
pub use modular::{modular_kb4, ModularParams, PlantedPartition};
pub use queries::instance_queries;
pub use random::{random_kb, random_kb4, RandomParams};
pub use taxonomy::{taxonomy_kb, TaxonomyParams};
pub use tenant::{tenant_fleet, TenantFleet, TenantFleetParams};
