//! A LUBM-flavoured university workload: the de-facto standard shape for
//! DL benchmarking (departments, professors, students, courses,
//! advisership and teaching relations), sized by a department count.
//!
//! The generator produces a *classical* KB plus a paper-flavoured twist:
//! an optional rate of "double advisership" conflicts — students asserted
//! to be advised by someone who is simultaneously recorded as not being
//! faculty — yielding the natural merged-data contradictions the paper
//! targets.

use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::{IndividualName, RoleName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the university generator.
#[derive(Debug, Clone)]
pub struct UniversityParams {
    /// Number of departments.
    pub departments: usize,
    /// Professors per department.
    pub professors_per_department: usize,
    /// Students per professor.
    pub students_per_professor: usize,
    /// Fraction of students whose advisor is also (contradictorily)
    /// recorded as non-faculty.
    pub conflict_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniversityParams {
    fn default() -> Self {
        UniversityParams {
            departments: 2,
            professors_per_department: 3,
            students_per_professor: 2,
            conflict_fraction: 0.0,
            seed: 0,
        }
    }
}

fn c(s: &str) -> Concept {
    Concept::atomic(s)
}

/// The fixed schema (TBox) shared by all instances.
pub fn university_tbox() -> Vec<Axiom> {
    let advises = RoleExpr::named("advises");
    let teaches = RoleExpr::named("teaches");
    let member_of = RoleExpr::named("memberOf");
    vec![
        Axiom::ConceptInclusion(c("Professor"), c("Faculty")),
        Axiom::ConceptInclusion(c("Faculty"), c("Employee")),
        Axiom::ConceptInclusion(c("Employee"), c("Person")),
        Axiom::ConceptInclusion(c("Student"), c("Person")),
        Axiom::disjoint(c("Student"), c("Faculty")),
        // Whoever advises someone is faculty.
        Axiom::ConceptInclusion(Concept::some(advises.clone(), Concept::Top), c("Faculty")),
        // Advisees of anyone are students.
        Axiom::range(advises, c("Student")),
        // Teachers teach courses.
        Axiom::range(teaches.clone(), c("Course")),
        Axiom::ConceptInclusion(Concept::some(teaches, Concept::Top), c("Faculty")),
        // Department membership domain.
        Axiom::domain(member_of.clone(), c("Person")),
        Axiom::range(member_of, c("Department")),
    ]
}

/// Individual names.
pub fn department_name(d: usize) -> IndividualName {
    IndividualName::new(format!("dept{d}"))
}
/// Professor `p` of department `d`.
pub fn professor_name(d: usize, p: usize) -> IndividualName {
    IndividualName::new(format!("prof_{d}_{p}"))
}
/// Student `s` of professor `p` in department `d`.
pub fn student_name(d: usize, p: usize, s: usize) -> IndividualName {
    IndividualName::new(format!("student_{d}_{p}_{s}"))
}

/// Generate the workload; returns the KB and the conflicted professors.
pub fn university_kb(params: &UniversityParams) -> (KnowledgeBase, Vec<IndividualName>) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut kb = KnowledgeBase::from_axioms(university_tbox());
    let mut conflicted = Vec::new();
    for d in 0..params.departments {
        kb.add(Axiom::ConceptAssertion(department_name(d), c("Department")));
        for p in 0..params.professors_per_department {
            let prof = professor_name(d, p);
            kb.add(Axiom::ConceptAssertion(prof.clone(), c("Professor")));
            kb.add(Axiom::RoleAssertion(
                RoleName::new("memberOf"),
                prof.clone(),
                department_name(d),
            ));
            kb.add(Axiom::RoleAssertion(
                RoleName::new("teaches"),
                prof.clone(),
                IndividualName::new(format!("course_{d}_{p}")),
            ));
            let conflict_here = rng.gen_bool(params.conflict_fraction);
            if conflict_here {
                // Merged-data contradiction: the professor is also
                // recorded as not faculty.
                kb.add(Axiom::ConceptAssertion(prof.clone(), c("Faculty").not()));
                conflicted.push(prof.clone());
            }
            for s in 0..params.students_per_professor {
                let student = student_name(d, p, s);
                kb.add(Axiom::ConceptAssertion(student.clone(), c("Student")));
                kb.add(Axiom::RoleAssertion(
                    RoleName::new("advises"),
                    prof.clone(),
                    student.clone(),
                ));
                kb.add(Axiom::RoleAssertion(
                    RoleName::new("memberOf"),
                    student,
                    department_name(d),
                ));
            }
        }
    }
    (kb, conflicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableau::Reasoner;

    #[test]
    fn clean_university_is_consistent() {
        let (kb, conflicted) = university_kb(&UniversityParams::default());
        assert!(conflicted.is_empty());
        let mut r = Reasoner::new(&kb);
        assert!(r.is_consistent().unwrap());
        // Professors are persons via the chain.
        assert!(r
            .is_instance_of(&professor_name(0, 0), &c("Person"))
            .unwrap());
        // Students are not faculty.
        assert!(r
            .is_instance_of(&student_name(0, 0, 0), &c("Faculty").not())
            .unwrap());
        // Advisers are faculty via the ∃advises.⊤ axiom.
        assert!(r
            .is_instance_of(&professor_name(0, 0), &c("Faculty"))
            .unwrap());
    }

    #[test]
    fn conflicted_university_is_classically_inconsistent() {
        let (kb, conflicted) = university_kb(&UniversityParams {
            conflict_fraction: 1.0,
            departments: 1,
            professors_per_department: 1,
            students_per_professor: 1,
            seed: 3,
        });
        assert_eq!(conflicted.len(), 1);
        let mut r = Reasoner::new(&kb);
        assert!(!r.is_consistent().unwrap());
    }

    #[test]
    fn four_valued_reading_localizes_the_conflict() {
        use shoin4::{InclusionKind, KnowledgeBase4, Reasoner4};
        let (kb, conflicted) = university_kb(&UniversityParams {
            conflict_fraction: 1.0,
            departments: 1,
            professors_per_department: 2,
            students_per_professor: 1,
            seed: 5,
        });
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        let r = Reasoner4::new(&kb4);
        assert!(r.is_satisfiable().unwrap());
        for prof in &conflicted {
            assert_eq!(
                r.query(prof, &c("Faculty")).unwrap(),
                fourval::TruthValue::Both
            );
        }
        // Students stay clean.
        assert_eq!(
            r.query(&student_name(0, 0, 0), &c("Student")).unwrap(),
            fourval::TruthValue::True
        );
    }

    #[test]
    fn size_scales_with_parameters() {
        let small = university_kb(&UniversityParams::default()).0.len();
        let big = university_kb(&UniversityParams {
            departments: 4,
            ..Default::default()
        })
        .0
        .len();
        assert!(big > small * 15 / 10);
    }
}
