//! KBs with *planted lint findings* — ground truth for evaluating the
//! `ontolint` static analyzer, the lint-flavoured sibling of
//! [`crate::inject`].
//!
//! The generator lays down a clean scaffold (a subsumption chain plus
//! membership and role assertions) and then plants a configurable number
//! of findings of each kind: directly contested facts, contradictions
//! reachable only through a told chain, contested role assertions,
//! duplicate axioms, subsumption cycles, and orphaned names. The returned
//! [`PlantedFindings`] records exactly what was planted, by name, so a
//! test can check the linter's recall without re-deriving anything.

use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};

/// Knobs for the lint-seeded generator.
#[derive(Debug, Clone)]
pub struct LintSeedParams {
    /// RNG seed (only the final axiom shuffle is randomised).
    pub seed: u64,
    /// Clean subsumption-chain axioms.
    pub n_clean_tbox: usize,
    /// Clean membership/role assertions.
    pub n_clean_abox: usize,
    /// Directly contested facts (`a : C` + `a : ¬C`) → `OL001`.
    pub n_contested_direct: usize,
    /// Contradictions through a told chain → `OL003`.
    pub n_contested_chained: usize,
    /// Contested role assertions (`R(a,b)` + `¬R(a,b)`) → `OL002`.
    pub n_contested_roles: usize,
    /// Duplicated clean axioms → `OL104`.
    pub n_duplicates: usize,
    /// Two-concept subsumption cycles → `OL102`.
    pub n_cycles: usize,
    /// Names mentioned in exactly one axiom → `OL101`.
    pub n_orphans: usize,
}

impl Default for LintSeedParams {
    fn default() -> Self {
        LintSeedParams {
            seed: 0,
            n_clean_tbox: 20,
            n_clean_abox: 30,
            n_contested_direct: 3,
            n_contested_chained: 2,
            n_contested_roles: 2,
            n_duplicates: 2,
            n_cycles: 1,
            n_orphans: 2,
        }
    }
}

/// The ground truth: what was planted, by name.
#[derive(Debug, Clone, Default)]
pub struct PlantedFindings {
    /// Pairs contested in every model (direct and chained plants).
    pub contested_concepts: Vec<(IndividualName, ConceptName)>,
    /// Role atoms contested in every model.
    pub contested_roles: Vec<(RoleName, IndividualName, IndividualName)>,
    /// Number of duplicated axioms.
    pub duplicates: usize,
    /// Number of planted subsumption cycles.
    pub cycles: usize,
    /// Orphaned concept names.
    pub orphans: Vec<ConceptName>,
}

/// Generate a KB with known planted findings (axioms shuffled).
pub fn lint_seeded_kb4(p: &LintSeedParams) -> (KnowledgeBase4, PlantedFindings) {
    let mut axioms: Vec<Axiom4> = Vec::new();
    let mut truth = PlantedFindings::default();
    let atom = |i: usize| Concept::atomic(format!("C{i}"));

    // Clean scaffold: a subsumption chain C0 ⊏ C1 ⊏ … and assertions
    // scattered over it (each concept also negatively mentioned elsewhere
    // so the scaffold itself stays orphan-free for chains of any length).
    for i in 0..p.n_clean_tbox {
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            atom(i),
            atom(i + 1),
        ));
    }
    let n_concepts = p.n_clean_tbox + 1;
    for j in 0..p.n_clean_abox {
        let a = IndividualName::new(format!("x{}", j % 10));
        if j % 3 == 0 {
            axioms.push(Axiom4::RoleAssertion(
                RoleName::new("linkedTo"),
                a,
                IndividualName::new(format!("x{}", (j + 1) % 10)),
            ));
        } else {
            axioms.push(Axiom4::ConceptAssertion(a, atom(j % n_concepts)));
        }
    }

    for i in 0..p.n_contested_direct {
        let a = IndividualName::new(format!("d{i}"));
        let c = ConceptName::new(format!("K{i}"));
        axioms.push(Axiom4::ConceptAssertion(
            a.clone(),
            Concept::atomic(c.clone()),
        ));
        axioms.push(Axiom4::ConceptAssertion(
            a.clone(),
            Concept::atomic(c.clone()).not(),
        ));
        // Mention the concept a third time so it never looks orphaned.
        axioms.push(Axiom4::ConceptAssertion(
            IndividualName::new(format!("d{i}b")),
            Concept::atomic(c.clone()),
        ));
        truth.contested_concepts.push((a, c));
    }

    for i in 0..p.n_contested_chained {
        let a = IndividualName::new(format!("ch{i}"));
        let (sub, sup) = (
            ConceptName::new(format!("P{i}")),
            ConceptName::new(format!("Q{i}")),
        );
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            Concept::atomic(sub.clone()),
            Concept::atomic(sup.clone()),
        ));
        axioms.push(Axiom4::ConceptAssertion(a.clone(), Concept::atomic(sub)));
        axioms.push(Axiom4::ConceptAssertion(
            a.clone(),
            Concept::atomic(sup.clone()).not(),
        ));
        truth.contested_concepts.push((a, sup));
    }

    for i in 0..p.n_contested_roles {
        let r = RoleName::new(format!("rr{i}"));
        let (a, b) = (
            IndividualName::new(format!("ra{i}")),
            IndividualName::new(format!("rb{i}")),
        );
        axioms.push(Axiom4::RoleAssertion(r.clone(), a.clone(), b.clone()));
        axioms.push(Axiom4::NegativeRoleAssertion(
            r.clone(),
            a.clone(),
            b.clone(),
        ));
        // Third mention keeps the role out of OL101's way.
        axioms.push(Axiom4::RoleAssertion(r.clone(), b.clone(), a.clone()));
        truth.contested_roles.push((r, a, b));
    }

    for i in 0..p.n_duplicates.min(p.n_clean_tbox) {
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            atom(i),
            atom(i + 1),
        ));
        truth.duplicates += 1;
    }

    for i in 0..p.n_cycles {
        let (y, z) = (
            Concept::atomic(format!("Y{i}")),
            Concept::atomic(format!("Z{i}")),
        );
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            y.clone(),
            z.clone(),
        ));
        axioms.push(Axiom4::ConceptInclusion(InclusionKind::Internal, z, y));
        truth.cycles += 1;
    }

    for i in 0..p.n_orphans {
        let orphan = ConceptName::new(format!("Orphan{i}"));
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            Concept::atomic(orphan.clone()),
            atom(0),
        ));
        truth.orphans.push(orphan);
    }

    let mut rng = StdRng::seed_from_u64(p.seed);
    axioms.shuffle(&mut rng);
    (KnowledgeBase4::from_axioms(axioms), truth)
}

/// Scale the default mix to approximately `n` axioms, keeping the planted
/// findings proportional — the workload for lint throughput measurements.
pub fn lint_seeded_kb4_sized(seed: u64, n: usize) -> (KnowledgeBase4, PlantedFindings) {
    let unit = LintSeedParams::default();
    let base = unit.n_clean_tbox
        + unit.n_clean_abox
        + 3 * unit.n_contested_direct
        + 3 * unit.n_contested_chained
        + 3 * unit.n_contested_roles
        + unit.n_duplicates
        + 2 * unit.n_cycles
        + unit.n_orphans;
    let k = (n / base).max(1);
    lint_seeded_kb4(&LintSeedParams {
        seed,
        n_clean_tbox: unit.n_clean_tbox * k,
        n_clean_abox: unit.n_clean_abox * k,
        n_contested_direct: unit.n_contested_direct * k,
        n_contested_chained: unit.n_contested_chained * k,
        n_contested_roles: unit.n_contested_roles * k,
        n_duplicates: unit.n_duplicates * k,
        n_cycles: unit.n_cycles * k,
        n_orphans: unit.n_orphans * k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let p = LintSeedParams::default();
        assert_eq!(lint_seeded_kb4(&p).0, lint_seeded_kb4(&p).0);
        assert_ne!(
            lint_seeded_kb4(&p).0,
            lint_seeded_kb4(&LintSeedParams { seed: 1, ..p }).0
        );
    }

    #[test]
    fn planted_counts_match_params() {
        let p = LintSeedParams::default();
        let (kb, truth) = lint_seeded_kb4(&p);
        assert_eq!(
            truth.contested_concepts.len(),
            p.n_contested_direct + p.n_contested_chained
        );
        assert_eq!(truth.contested_roles.len(), p.n_contested_roles);
        assert_eq!(truth.orphans.len(), p.n_orphans);
        assert!(kb.len() > p.n_clean_tbox + p.n_clean_abox);
    }

    #[test]
    fn sized_generator_hits_the_target() {
        let (kb, _) = lint_seeded_kb4_sized(7, 1000);
        assert!(kb.len() >= 900 && kb.len() <= 1200, "{}", kb.len());
    }
}
