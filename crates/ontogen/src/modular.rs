//! KBs with *planted modular structure* — disjoint islands of axioms
//! with known membership, some of them contaminated by a planted
//! contradiction. Ground truth for the signature dataflow analysis
//! (`ontolint::dataflow`): the dependency components must recover the
//! islands, the contamination partition must recover exactly the
//! contaminated islands, and module-scoped queries about a clean
//! island must never touch (or pay for) the others.
//!
//! Each island `i` owns a private namespace — concepts `I{i}C{j}`, a
//! role `I{i}r`, individuals `I{i}x{k}` — so islands share no
//! signature atom by construction. The returned [`PlantedPartition`]
//! maps every axiom index (post-shuffle) back to its island.

use dl::name::{ConceptName, IndividualName, RoleName};
use dl::Concept;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};

/// Knobs for the modular generator.
#[derive(Debug, Clone)]
pub struct ModularParams {
    /// RNG seed (only the final axiom shuffle is randomised).
    pub seed: u64,
    /// Number of disjoint islands.
    pub n_islands: usize,
    /// Subsumption-chain length per island (`I{i}C0 ⊏ … ⊏ I{i}C{n}`),
    /// with every third link strong and every fifth material so the
    /// polarity-aware analysis sees all §3.1 edge kinds.
    pub island_tbox: usize,
    /// Membership/role assertions per island.
    pub island_abox: usize,
    /// The first `contaminated_islands` islands get a planted direct
    /// contradiction (`I{i}x0 : I{i}C0` + its negation).
    pub contaminated_islands: usize,
}

impl Default for ModularParams {
    fn default() -> Self {
        ModularParams {
            seed: 0,
            n_islands: 4,
            island_tbox: 8,
            island_abox: 12,
            contaminated_islands: 1,
        }
    }
}

/// The ground truth of a modular KB.
#[derive(Debug, Clone, Default)]
pub struct PlantedPartition {
    /// `islands[i]` — the (post-shuffle) axiom indices of island `i`,
    /// sorted.
    pub islands: Vec<Vec<usize>>,
    /// Island ids carrying a planted contradiction.
    pub contaminated: Vec<usize>,
    /// Per-island concept names, chain order.
    pub island_concepts: Vec<Vec<ConceptName>>,
    /// Per-island individuals.
    pub island_individuals: Vec<Vec<IndividualName>>,
}

impl PlantedPartition {
    /// Island ids without a planted contradiction.
    pub fn clean(&self) -> Vec<usize> {
        (0..self.islands.len())
            .filter(|i| !self.contaminated.contains(i))
            .collect()
    }
}

/// Generate a KB of disjoint islands with known membership (axioms
/// shuffled; the partition tracks indices through the shuffle).
pub fn modular_kb4(p: &ModularParams) -> (KnowledgeBase4, PlantedPartition) {
    // Build (axiom, island) pairs, then shuffle and invert the map.
    let mut tagged: Vec<(Axiom4, usize)> = Vec::new();
    let mut truth = PlantedPartition {
        islands: vec![Vec::new(); p.n_islands],
        ..PlantedPartition::default()
    };
    for i in 0..p.n_islands {
        let atom = |j: usize| Concept::atomic(format!("I{i}C{j}"));
        let ind = |k: usize| IndividualName::new(format!("I{i}x{k}"));
        let role = RoleName::new(format!("I{i}r"));
        let mut concepts = Vec::new();
        for j in 0..=p.island_tbox {
            concepts.push(ConceptName::new(format!("I{i}C{j}")));
        }
        for j in 0..p.island_tbox {
            let kind = if j % 5 == 4 {
                InclusionKind::Material
            } else if j % 3 == 2 {
                InclusionKind::Strong
            } else {
                InclusionKind::Internal
            };
            tagged.push((Axiom4::ConceptInclusion(kind, atom(j), atom(j + 1)), i));
        }
        let n_inds = (p.island_abox / 2).max(2);
        for k in 0..p.island_abox {
            let ax = if k % 4 == 3 {
                Axiom4::RoleAssertion(role.clone(), ind(k % n_inds), ind((k + 1) % n_inds))
            } else {
                Axiom4::ConceptAssertion(ind(k % n_inds), atom(k % (p.island_tbox + 1)))
            };
            tagged.push((ax, i));
        }
        if i < p.contaminated_islands {
            tagged.push((Axiom4::ConceptAssertion(ind(0), atom(0)), i));
            tagged.push((Axiom4::ConceptAssertion(ind(0), atom(0).not()), i));
            truth.contaminated.push(i);
        }
        truth.island_concepts.push(concepts);
        truth
            .island_individuals
            .push((0..n_inds).map(ind).collect());
    }
    let mut rng = StdRng::seed_from_u64(p.seed);
    tagged.shuffle(&mut rng);
    for (idx, (_, island)) in tagged.iter().enumerate() {
        truth.islands[*island].push(idx);
    }
    let axioms: Vec<Axiom4> = tagged.into_iter().map(|(ax, _)| ax).collect();
    (KnowledgeBase4::from_axioms(axioms), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_partition_is_total() {
        let p = ModularParams::default();
        let (kb, truth) = modular_kb4(&p);
        assert_eq!(modular_kb4(&p).0, kb);
        assert_ne!(
            modular_kb4(&ModularParams {
                seed: 9,
                ..p.clone()
            })
            .0,
            kb
        );
        let mut all: Vec<usize> = truth.islands.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..kb.len()).collect::<Vec<_>>());
        assert_eq!(truth.clean(), vec![1, 2, 3]);
    }

    #[test]
    fn islands_share_no_names() {
        let (kb, truth) = modular_kb4(&ModularParams::default());
        let sig_of = |island: &Vec<usize>| {
            let axioms: Vec<Axiom4> = island.iter().map(|&i| kb.axioms()[i].clone()).collect();
            KnowledgeBase4::from_axioms(axioms).signature()
        };
        let a = sig_of(&truth.islands[0]);
        let b = sig_of(&truth.islands[1]);
        assert!(a.concepts.intersection(&b.concepts).next().is_none());
        assert!(a.individuals.intersection(&b.individuals).next().is_none());
        assert!(a.roles.intersection(&b.roles).next().is_none());
    }

    #[test]
    fn all_inclusion_kinds_are_planted() {
        let (kb, _) = modular_kb4(&ModularParams::default());
        for kind in [
            InclusionKind::Internal,
            InclusionKind::Strong,
            InclusionKind::Material,
        ] {
            assert!(
                kb.axioms()
                    .iter()
                    .any(|ax| matches!(ax, Axiom4::ConceptInclusion(k, ..) if *k == kind)),
                "missing {kind:?}"
            );
        }
    }

    #[test]
    fn contaminated_islands_really_contradict() {
        let (kb, truth) = modular_kb4(&ModularParams::default());
        let diags = ontolint_smoke(&kb);
        assert!(diags > 0, "no contradiction found in contaminated island");
        assert_eq!(truth.contaminated, vec![0]);
    }

    // ontolint depends on ontogen's output only in tests/ at workspace
    // level; here we just check the planted pair syntactically.
    fn ontolint_smoke(kb: &KnowledgeBase4) -> usize {
        let mut pairs = 0;
        for a in kb.axioms() {
            if let Axiom4::ConceptAssertion(x, Concept::Not(inner)) = a {
                if kb
                    .axioms()
                    .iter()
                    .any(|b| matches!(b, Axiom4::ConceptAssertion(y, d) if y == x && d == inner.as_ref()))
                {
                    pairs += 1;
                }
            }
        }
        pairs
    }
}
