//! Labeled KBs spanning the static-hardness spectrum: the calibration
//! corpus for `shoin4::hardness`.
//!
//! Three island shapes, each namespaced per KB so every generated KB is
//! a single signature-dataflow module with a known character:
//!
//! * [`HardnessShape::HornChain`] — internal subsumption chains plus
//!   assertions; entirely inside the Horn fragment, so the predicted
//!   score must stay below the heavy threshold;
//! * [`HardnessShape::Disjunctive`] — `⊔`-right chains whose classical
//!   images are rejected by the Horn classifier; branch points (and the
//!   measured tableau branching) grow with `size`;
//! * [`HardnessShape::ExistsDeep`] — acyclic `∃`-doubling towers; the
//!   expansion skeleton is bounded at depth `size` but the model the
//!   tableau builds doubles with it.
//!
//! Each [`LabeledKb`] carries a probe (individual, concept) whose query
//! is dataflow-connected to the island, so calibration runs can measure
//! real search cost (`tableau::Stats`) against the predicted score and
//! assert rank correlation. Axiom order is shuffled per KB (seeded) —
//! consumers double as a test of the analyzer's order invariance.

use dl::name::{IndividualName, RoleName};
use dl::{Concept, RoleExpr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};

/// Ground-truth shape of a generated KB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardnessShape {
    /// Horn subsumption chain: cheap, saturates.
    HornChain,
    /// `⊔`-residue chain: branch points grow with size.
    Disjunctive,
    /// Acyclic `∃`-doubling tower: model size grows with depth.
    ExistsDeep,
}

impl HardnessShape {
    /// All shapes, generation order.
    pub const ALL: [HardnessShape; 3] = [
        HardnessShape::HornChain,
        HardnessShape::Disjunctive,
        HardnessShape::ExistsDeep,
    ];

    /// Whether queries on this shape should leave the Horn fast path.
    pub fn expect_residue(self) -> bool {
        !matches!(self, HardnessShape::HornChain)
    }
}

/// Knobs for the mix generator.
#[derive(Debug, Clone)]
pub struct HardnessMixParams {
    /// RNG seed (per-KB axiom shuffles only; content is deterministic
    /// in the other knobs).
    pub seed: u64,
    /// KBs generated per shape.
    pub per_shape: usize,
    /// Smallest chain length / tower depth.
    pub min_size: usize,
    /// Largest chain length / tower depth (inclusive); sizes cycle
    /// through the range so every shape covers the whole spread.
    pub max_size: usize,
}

impl Default for HardnessMixParams {
    fn default() -> Self {
        HardnessMixParams {
            seed: 0,
            per_shape: 34, // 3 shapes × 34 = 102 KBs ≥ the 100-KB floor
            min_size: 2,
            max_size: 7,
        }
    }
}

/// One generated KB with its ground truth and measurement probe.
#[derive(Debug, Clone)]
pub struct LabeledKb {
    /// Stable id, e.g. `horn3/chain5` (shape, index, size).
    pub id: String,
    /// Planted shape.
    pub shape: HardnessShape,
    /// Chain length / tower depth.
    pub size: usize,
    /// The KB (one island, axiom order shuffled).
    pub kb: KnowledgeBase4,
    /// A query connected to the island by dataflow: running it measures
    /// the island's real search cost.
    pub probe: (IndividualName, Concept),
}

/// `C0 ⊑ C1 ⊑ … ⊑ Cn` (internal), `x0 : C0`.
fn horn_island(prefix: &str, n: usize) -> Vec<Axiom4> {
    let atom = |j: usize| Concept::atomic(format!("{prefix}C{j}"));
    let mut axioms: Vec<Axiom4> = (0..n)
        .map(|j| Axiom4::ConceptInclusion(InclusionKind::Internal, atom(j), atom(j + 1)))
        .collect();
    axioms.push(Axiom4::ConceptAssertion(
        IndividualName::new(format!("{prefix}x0")),
        atom(0),
    ));
    axioms
}

/// `Cj ⊑ C(j+1) ⊔ Dj` and `Dj ⊑ C(j+1)` (internal), `x0 : C0` — every
/// inclusion with a `⊔` right-hand side is Horn residue, and the shared
/// `C`/`D` names chain the whole thing into one module.
fn disjunctive_island(prefix: &str, n: usize) -> Vec<Axiom4> {
    let c = |j: usize| Concept::atomic(format!("{prefix}C{j}"));
    let d = |j: usize| Concept::atomic(format!("{prefix}D{j}"));
    let mut axioms = Vec::with_capacity(2 * n + 1);
    for j in 0..n {
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            c(j),
            c(j + 1).or(d(j)),
        ));
        axioms.push(Axiom4::ConceptInclusion(
            InclusionKind::Internal,
            d(j),
            c(j + 1),
        ));
    }
    axioms.push(Axiom4::ConceptAssertion(
        IndividualName::new(format!("{prefix}x0")),
        c(0),
    ));
    axioms
}

/// `Ej ⊑ ∃r.E(j+1) ⊓ ∃s.E(j+1)` for `j < n` (internal, acyclic),
/// `x0 : E0` — the expansion skeleton is bounded at depth `n` but the
/// canonical model doubles per level.
fn exists_island(prefix: &str, n: usize) -> Vec<Axiom4> {
    let atom = |j: usize| Concept::atomic(format!("{prefix}E{j}"));
    let r = RoleName::new(format!("{prefix}r"));
    let s = RoleName::new(format!("{prefix}s"));
    let mut axioms: Vec<Axiom4> = (0..n)
        .map(|j| {
            let next = atom(j + 1);
            Axiom4::ConceptInclusion(
                InclusionKind::Internal,
                atom(j),
                Concept::some(RoleExpr::named(r.clone()), next.clone())
                    .and(Concept::some(RoleExpr::named(s.clone()), next)),
            )
        })
        .collect();
    axioms.push(Axiom4::ConceptAssertion(
        IndividualName::new(format!("{prefix}x0")),
        atom(0),
    ));
    axioms
}

type IslandBuilder = fn(&str, usize) -> Vec<Axiom4>;

/// Generate the labeled corpus (deterministic in `params`).
pub fn hardness_mix(p: &HardnessMixParams) -> Vec<LabeledKb> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let span = p.max_size.saturating_sub(p.min_size) + 1;
    let mut out = Vec::with_capacity(3 * p.per_shape);
    for shape in HardnessShape::ALL {
        for i in 0..p.per_shape {
            let size = p.min_size + i % span;
            let (tag, builder): (&str, IslandBuilder) = match shape {
                HardnessShape::HornChain => ("horn", horn_island),
                HardnessShape::Disjunctive => ("disj", disjunctive_island),
                HardnessShape::ExistsDeep => ("deep", exists_island),
            };
            let prefix = format!("{}{i}N", tag.to_uppercase());
            let mut axioms = builder(&prefix, size);
            axioms.shuffle(&mut rng);
            let goal = match shape {
                HardnessShape::ExistsDeep => Concept::atomic(format!("{prefix}E{size}")),
                _ => Concept::atomic(format!("{prefix}C{size}")),
            };
            out.push(LabeledKb {
                id: format!("{tag}{i}/chain{size}"),
                shape,
                size,
                kb: KnowledgeBase4::from_axioms(axioms),
                probe: (IndividualName::new(format!("{prefix}x0")), goal),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_covers_every_shape_and_size() {
        let p = HardnessMixParams::default();
        let corpus = hardness_mix(&p);
        assert_eq!(corpus.len(), 102);
        let again = hardness_mix(&p);
        for (a, b) in corpus.iter().zip(&again) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.kb.axioms(), b.kb.axioms());
        }
        for shape in HardnessShape::ALL {
            let sizes: std::collections::BTreeSet<usize> = corpus
                .iter()
                .filter(|l| l.shape == shape)
                .map(|l| l.size)
                .collect();
            assert_eq!(sizes, (p.min_size..=p.max_size).collect(), "{shape:?}");
        }
    }

    #[test]
    fn each_kb_is_one_island_whose_probe_is_connected() {
        for l in hardness_mix(&HardnessMixParams {
            per_shape: 3,
            ..HardnessMixParams::default()
        }) {
            let analysis = shoin4::hardness::analyze_kb(&l.kb);
            assert_eq!(analysis.modules.len(), 1, "{}", l.id);
            let (ind, _) = &l.probe;
            assert!(
                l.kb.axioms()
                    .iter()
                    .any(|ax| format!("{ax:?}").contains(ind.as_str())),
                "{}: probe individual missing",
                l.id
            );
        }
    }

    #[test]
    fn shapes_plant_the_intended_stratification() {
        for l in hardness_mix(&HardnessMixParams {
            per_shape: 6,
            ..HardnessMixParams::default()
        }) {
            let analysis = shoin4::hardness::analyze_kb(&l.kb);
            let m = &analysis.modules[0];
            match l.shape {
                HardnessShape::HornChain => {
                    assert_eq!(m.report.cost.residue, 0, "{}", l.id);
                    assert!(
                        m.report.score < shoin4::hardness::DEFAULT_HEAVY_THRESHOLD,
                        "{}: {}",
                        l.id,
                        m.report.score
                    );
                }
                HardnessShape::Disjunctive => {
                    assert!(m.report.cost.residue > 0, "{}", l.id);
                    assert!(m.report.cost.branch_points as usize >= l.size, "{}", l.id);
                }
                HardnessShape::ExistsDeep => {
                    assert_eq!(m.report.cost.exists_depth, Some(l.size as u32), "{}", l.id);
                }
            }
        }
    }

    #[test]
    fn score_grows_with_size_within_the_hard_shapes() {
        let corpus = hardness_mix(&HardnessMixParams::default());
        for shape in [HardnessShape::Disjunctive, HardnessShape::ExistsDeep] {
            let mut by_size: Vec<(usize, f64)> = corpus
                .iter()
                .filter(|l| l.shape == shape)
                .map(|l| (l.size, shoin4::hardness::analyze_kb(&l.kb).max_score()))
                .collect();
            by_size.sort_by_key(|&(s, _)| s);
            for w in by_size.windows(2) {
                assert!(
                    w[1].1 >= w[0].1,
                    "{shape:?}: score not monotone in size: {by_size:?}"
                );
            }
        }
    }
}
