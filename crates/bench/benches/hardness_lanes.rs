//! Cost-aware admission lanes under mixed load: the experiment behind
//! the serving layer's `LaneOptions`.
//!
//! The workload plants a bimodal fleet — Horn-chain tenants (every
//! probe saturates in microseconds) sharing a server with a hostile
//! `∃`-doubling tenant whose every `check` burns its full time budget.
//! Two measured configurations:
//!
//! 1. **Single queue** (lanes off): hostile requests and cheap requests
//!    interleave on the same workers, so every budget-quantum a hostile
//!    search holds a worker is head-of-line latency some cheap request
//!    eats.
//! 2. **Lanes on**: the static hardness score routes hostile requests
//!    to a dedicated heavy lane; cheap requests keep their own workers.
//!
//! The bench asserts the headline claim where the numbers are made:
//! cheap-tenant p99 with lanes on must be *strictly* better than the
//! single-queue p99 under the same load — and the routing must be real
//! (heavy admissions > 0 with lanes on, every cheap verdict identical
//! across both runs).
//!
//! Besides the Criterion group (analyzer throughput over the
//! calibration corpus) this writes summary rows to
//! `target/experiments/hardness_lanes.jsonl` and refreshes the
//! committed snapshot `BENCH_hardness.json` at the repo root. Set
//! `BENCH_SMOKE=1` to shrink the series for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsonio::Value;
use ontogen::hardness_mix::{hardness_mix, HardnessMixParams, HardnessShape, LabeledKb};
use shoin4::serve::{hostile_kb, LaneOptions, Registry, ServeOptions, Server};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tableau::Config;

/// The quantum a hostile search holds a worker for — also the unit the
/// single-queue head-of-line damage comes in.
const HOSTILE_BUDGET: Duration = Duration::from_millis(25);

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Value {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        Value::parse(&reply).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }
}

fn percentile_us(latencies: &mut [Duration], p: f64) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[idx].as_secs_f64() * 1e6
}

/// The cheap side of the fleet: the calibration corpus's Horn chains.
fn cheap_tenants() -> Vec<LabeledKb> {
    hardness_mix(&HardnessMixParams {
        per_shape: 8,
        ..HardnessMixParams::default()
    })
    .into_iter()
    .filter(|l| l.shape == HardnessShape::HornChain)
    .collect()
}

/// One mixed-load run: hostile clients hammer the `∃`-doubling tenant
/// for the whole window while a cheap client walks the Horn tenants
/// `passes` times, recording per-request latency and every verdict.
/// Returns (cheap latencies, cheap verdicts, heavy admissions).
fn mixed_load(
    opts: ServeOptions,
    cheap: &[LabeledKb],
    passes: usize,
) -> (Vec<Duration>, Vec<String>, u64) {
    let config = Config {
        time_budget: Some(HOSTILE_BUDGET),
        ..Config::default()
    };
    let registry = Arc::new(Registry::new(config));
    for l in cheap {
        assert!(registry.register(&l.id, &l.kb));
    }
    registry.register("evil", &hostile_kb(40));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), opts).expect("bind");
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    let collected = Mutex::new((Vec::new(), Vec::new()));
    std::thread::scope(|scope| {
        // Two hostile clients keep heavy work continuously in flight;
        // each reply must be a typed budget/cancelled/overloaded error,
        // never a hang.
        for _ in 0..2 {
            let stop = &stop;
            scope.spawn(move || {
                let mut c = Client::connect(addr);
                c.ask("tenant evil");
                while !stop.load(Ordering::Relaxed) {
                    let reply = c.ask("check");
                    let code = reply.get("error").and_then(Value::as_str);
                    assert!(
                        matches!(code, Some("budget" | "cancelled" | "overloaded")),
                        "unexpected hostile reply: {reply}"
                    );
                }
            });
        }
        // The measured cheap client.
        {
            let (stop, collected) = (&stop, &collected);
            scope.spawn(move || {
                let mut c = Client::connect(addr);
                let mut latencies = Vec::new();
                let mut verdicts = Vec::new();
                for _ in 0..passes {
                    for l in cheap {
                        c.ask(&format!("tenant {}", l.id));
                        let (ind, goal) = &l.probe;
                        let probe = format!("query {ind} {goal}");
                        let start = Instant::now();
                        let reply = c.ask(&probe);
                        latencies.push(start.elapsed());
                        let verdict = reply
                            .get("verdict")
                            .and_then(Value::as_str)
                            .unwrap_or_else(|| panic!("cheap probe failed: {reply}"))
                            .to_string();
                        verdicts.push(format!("{}: {verdict}", l.id));
                    }
                }
                c.ask("quit");
                *shoin4::cache::lock_mutex(collected) = (latencies, verdicts);
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    let (latencies, verdicts) = shoin4::cache::lock_mutex(&collected).clone();
    let heavy = server.stats().heavy_admitted.load(Ordering::Relaxed);
    server.shutdown();
    (latencies, verdicts, heavy)
}

fn bench_hardness_lanes(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let passes = if smoke { 3 } else { 12 };
    let cheap = cheap_tenants();
    let mut rows = Vec::new();

    // Criterion group: raw analyzer throughput — the whole calibration
    // corpus scored per iteration (this is the work the serving layer's
    // admission path amortizes through the shared score cache).
    let corpus: Vec<_> = hardness_mix(&HardnessMixParams::default());
    let mut group = c.benchmark_group("hardness_lanes");
    group.bench_with_input(
        BenchmarkId::new("analyze_corpus", corpus.len()),
        &corpus,
        |b, corpus| {
            b.iter(|| {
                let heavy: usize = corpus
                    .iter()
                    .map(|l| {
                        shoin4::hardness::analyze_kb(&l.kb)
                            .heavy_modules(shoin4::hardness::DEFAULT_HEAVY_THRESHOLD)
                    })
                    .sum();
                black_box(heavy)
            })
        },
    );
    group.finish();

    // Phase 1: single queue. Two workers shared by everyone.
    let (mut base_lat, base_verdicts, base_heavy) = mixed_load(
        ServeOptions {
            workers: 2,
            queue_depth: 64,
            lanes: None,
        },
        &cheap,
        passes,
    );
    assert_eq!(base_heavy, 0, "lanes off must not count heavy admissions");

    // Phase 2: lanes on. The same two cheap workers, plus one dedicated
    // heavy worker the hostile tenant is routed to by its static score.
    let (mut lane_lat, lane_verdicts, lane_heavy) = mixed_load(
        ServeOptions {
            workers: 2,
            queue_depth: 64,
            lanes: Some(LaneOptions {
                heavy_workers: 1,
                heavy_budget: Some(HOSTILE_BUDGET),
                ..LaneOptions::default()
            }),
        },
        &cheap,
        passes,
    );
    assert!(
        lane_heavy > 0,
        "the hostile tenant was never routed to the heavy lane"
    );
    assert_eq!(
        base_verdicts, lane_verdicts,
        "lanes changed a cheap verdict"
    );

    let p99_base = percentile_us(&mut base_lat, 0.99);
    let p99_lanes = percentile_us(&mut lane_lat, 0.99);
    let p50_base = percentile_us(&mut base_lat, 0.50);
    let p50_lanes = percentile_us(&mut lane_lat, 0.50);
    // The headline claim: isolating heavy work must strictly improve
    // the cheap tail. The margin is structural — single-queue cheap
    // requests eat hostile budget quanta (25ms) head-of-line, laned
    // ones never queue behind hostile work at all.
    assert!(
        p99_lanes < p99_base,
        "lanes did not improve the cheap p99: {p99_base:.0}us → {p99_lanes:.0}us"
    );

    let row = |series: &str, value: f64, unit: &str| bench::ExperimentRow {
        experiment: "hardness_lanes".into(),
        x: cheap.len() as f64,
        series: series.into(),
        value,
        unit: unit.into(),
    };
    rows.push(row("cheap_p50_single_queue", p50_base, "us"));
    rows.push(row("cheap_p99_single_queue", p99_base, "us"));
    rows.push(row("cheap_p50_lanes", p50_lanes, "us"));
    rows.push(row("cheap_p99_lanes", p99_lanes, "us"));
    rows.push(row("heavy_admitted_lanes", lane_heavy as f64, "count"));

    bench::write_rows("hardness_lanes", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hardness.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"hardness_lanes\",").expect("write");
        writeln!(f, "  \"unit\": \"us\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_hardness_lanes);
criterion_main!(benches);
