//! Incremental sessions vs rebuild-per-mutation, on ontogen's localized
//! churn workloads (`ontogen::churn`): a modular base KB, a stream of
//! interleaved queries (all islands) and mutations (one hot island).
//! This is the regime `shoin4::incremental` exists for — the rebuild
//! baseline reconstructs a fresh `Reasoner4` after every mutation and
//! so re-pays the told index, module extraction, Horn compilation and
//! every cache from zero, while the session's delta-driven invalidation
//! keeps everything outside the hot island warm.
//!
//! Correctness is asserted where the numbers are produced: a
//! verification pass replays the trace through both engines and demands
//! bit-identical verdicts on every query op, and the session's
//! invalidation counters must stay far below one-module-per-mutation
//! times the cached-module population (module-granular, not global).
//!
//! Besides the Criterion group this writes summary rows to
//! `target/experiments/incremental_churn.jsonl` and refreshes the
//! committed snapshot `BENCH_incremental.json` at the repo root
//! (including the `speedup_largest` row EXPERIMENTS.md §X8 cites). Set
//! `BENCH_SMOKE=1` to shrink the series for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontogen::churn::{churn_workload, ChurnOp, ChurnParams};
use ontogen::modular::ModularParams;
use shoin4::reasoner4::QueryOptions;
use shoin4::{Axiom4, KnowledgeBase4, Reasoner4, Session};
use std::hint::black_box;
use std::io::Write;
use tableau::Config;

fn workload(n_islands: usize, ops: usize) -> (KnowledgeBase4, Vec<ChurnOp>) {
    let (kb, _, trace) = churn_workload(&ChurnParams {
        seed: 7,
        modular: ModularParams {
            seed: 7,
            n_islands,
            island_tbox: 8,
            island_abox: 12,
            contaminated_islands: 1,
        },
        ops,
        mutation_percent: 15,
        hot_island: 0,
    });
    (kb, trace)
}

fn config() -> Config {
    Config::default()
}

fn fresh_reasoner(axioms: &[Axiom4]) -> Reasoner4 {
    Reasoner4::with_options(
        &KnowledgeBase4::from_axioms(axioms.iter().cloned()),
        config(),
        QueryOptions::default(),
    )
}

/// One full trace through a long-lived session.
fn session_pass(kb: &KnowledgeBase4, ops: &[ChurnOp]) -> Session {
    let mut session = Session::new(kb, config());
    for op in ops {
        match op {
            ChurnOp::Add(ax) => session.add_axiom(ax.clone()).expect("in-memory add"),
            ChurnOp::Retract(ax) => {
                session.retract_axiom(ax).expect("in-memory retract");
            }
            ChurnOp::Query(a, c) => {
                black_box(session.query(a, c).expect("within limits"));
            }
        }
    }
    session
}

/// The baseline: rebuild the entire reasoner after every mutation.
fn rebuild_pass(kb: &KnowledgeBase4, ops: &[ChurnOp]) {
    let mut axioms = kb.axioms().to_vec();
    let mut reasoner = fresh_reasoner(&axioms);
    for op in ops {
        match op {
            ChurnOp::Add(ax) => {
                axioms.push(ax.clone());
                reasoner = fresh_reasoner(&axioms);
            }
            ChurnOp::Retract(ax) => {
                let i = axioms
                    .iter()
                    .rposition(|x| x == ax)
                    .expect("trace retracts prior adds");
                axioms.remove(i);
                reasoner = fresh_reasoner(&axioms);
            }
            ChurnOp::Query(a, c) => {
                black_box(reasoner.query(a, c).expect("within limits"));
            }
        }
    }
}

/// Differential verification: both engines walk the trace together and
/// every query verdict must be bit-identical.
fn verify_parity(kb: &KnowledgeBase4, ops: &[ChurnOp]) {
    let mut session = Session::new(kb, config());
    let mut axioms = kb.axioms().to_vec();
    let mut reasoner: Option<Reasoner4> = None;
    for op in ops {
        match op {
            ChurnOp::Add(ax) => {
                session.add_axiom(ax.clone()).expect("add");
                axioms.push(ax.clone());
                reasoner = None;
            }
            ChurnOp::Retract(ax) => {
                assert!(session.retract_axiom(ax).expect("retract"));
                let i = axioms.iter().rposition(|x| x == ax).expect("prior add");
                axioms.remove(i);
                reasoner = None;
            }
            ChurnOp::Query(a, c) => {
                let r = reasoner.get_or_insert_with(|| fresh_reasoner(&axioms));
                assert_eq!(
                    session.query(a, c).expect("session"),
                    r.query(a, c).expect("rebuild"),
                    "verdict divergence on {a}:{c:?}"
                );
            }
        }
    }
}

fn timed_ops_per_sec(kb: &KnowledgeBase4, ops: &[ChurnOp], session: bool, reps: u32) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        if session {
            session_pass(kb, ops);
        } else {
            rebuild_pass(kb, ops);
        }
    }
    (reps as usize * ops.len()) as f64 / start.elapsed().as_secs_f64()
}

fn bench_incremental_churn(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let sizes: &[usize] = if smoke { &[3] } else { &[4, 8, 16] };
    let n_ops = if smoke { 120 } else { 400 };
    let mut rows = Vec::new();
    let mut largest = (f64::NAN, f64::NAN); // (rebuild, session) ops/sec

    let mut group = c.benchmark_group("incremental_churn");
    group.sample_size(10);
    for &n in sizes {
        let (kb, ops) = workload(n, n_ops);
        let len = kb.len();
        verify_parity(&kb, &ops);

        // Invalidation must be module-granular: across the whole trace
        // the session may invalidate only a small fraction of the
        // warm-module population per mutation, or the "incremental"
        // engine is just rebuilding with extra steps.
        let probe = session_pass(&kb, &ops);
        let stats = probe.stats();
        let modules = probe.cached_modules() as u64 + stats.invalidated_modules;
        assert!(stats.mutations > 0, "trace has no mutations");
        assert!(
            stats.invalidated_modules * 4 < stats.mutations * modules,
            "invalidation not module-granular: {} invalidated over {} mutations, {} modules",
            stats.invalidated_modules,
            stats.mutations,
            modules
        );
        assert!(
            stats.entailment_cache_hits > 0,
            "entailment cache never hit across the churn trace"
        );

        for session in [false, true] {
            let series = if session { "session" } else { "rebuild" };
            if n == sizes[0] {
                group.bench_with_input(BenchmarkId::new(series, len), &kb, |b, kb| {
                    b.iter(|| {
                        if session {
                            session_pass(kb, &ops);
                        } else {
                            rebuild_pass(kb, &ops);
                        }
                    })
                });
            }
            let reps = if session || smoke { 5 } else { 2 };
            let ops_sec = timed_ops_per_sec(&kb, &ops, session, reps);
            rows.push(bench::ExperimentRow {
                experiment: "incremental_churn".into(),
                x: len as f64,
                series: series.into(),
                value: ops_sec,
                unit: "ops/sec".into(),
            });
            if n == *sizes.last().expect("nonempty") {
                if session {
                    largest.1 = ops_sec;
                } else {
                    largest.0 = ops_sec;
                }
            }
        }
    }
    group.finish();

    let (rebuild_ops, session_ops) = largest;
    rows.push(bench::ExperimentRow {
        experiment: "incremental_churn".into(),
        x: workload(*sizes.last().expect("nonempty"), n_ops).0.len() as f64,
        series: "speedup_largest".into(),
        value: session_ops / rebuild_ops,
        unit: "x".into(),
    });
    bench::write_rows("incremental_churn", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"incremental_churn\",").expect("write");
        writeln!(f, "  \"unit\": \"ops/sec\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_incremental_churn);
criterion_main!(benches);
