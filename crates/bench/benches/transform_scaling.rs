//! Experiment C1: "concept, role and axiom transformations can be
//! finished in polynomial time" (§4.1). The paper states the claim
//! without measuring it; we measure it.
//!
//! Series: transformation wall time vs KB size, for the naive recursion
//! and the memoized transformer (DESIGN.md ablation
//! `bench_ablation_transform_memo`). The shape to verify: near-linear
//! growth — doubling the KB roughly doubles the time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontogen::random::{random_kb4, RandomParams};
use shoin4::transform::Transformer;
use shoin4::KnowledgeBase4;
use std::hint::black_box;
use std::time::Instant;

fn kb_of_size(n_axioms: usize) -> KnowledgeBase4 {
    let p = RandomParams {
        n_concepts: 20,
        n_roles: 6,
        n_individuals: 10,
        n_tbox: n_axioms * 3 / 4,
        n_abox: n_axioms / 4,
        max_depth: 3,
        number_restrictions: true,
        inverse_roles: true,
        seed: 42,
    };
    random_kb4(&p, (0.3, 0.4, 0.3))
}

fn bench_transform_scaling(c: &mut Criterion) {
    let sizes = [50usize, 100, 200, 400, 800];
    let mut group = c.benchmark_group("C1_transform_scaling");
    group.sample_size(20);
    let mut rows = Vec::new();
    for &n in &sizes {
        let kb = kb_of_size(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &kb, |b, kb| {
            b.iter(|| black_box(Transformer::new().kb(black_box(kb))))
        });
        group.bench_with_input(BenchmarkId::new("memoized", n), &kb, |b, kb| {
            b.iter(|| black_box(Transformer::memoized().kb(black_box(kb))))
        });
        // One summary measurement per configuration for EXPERIMENTS.md.
        for (series, memo) in [("naive", false), ("memoized", true)] {
            let start = Instant::now();
            let reps = 20;
            for _ in 0..reps {
                let mut tr = if memo {
                    Transformer::memoized()
                } else {
                    Transformer::new()
                };
                black_box(tr.kb(&kb));
            }
            let micros = start.elapsed().as_micros() as f64 / reps as f64;
            rows.push(bench::ExperimentRow {
                experiment: "C1".into(),
                x: kb.size() as f64,
                series: series.into(),
                value: micros,
                unit: "us/transform".into(),
            });
        }
    }
    group.finish();
    bench::write_rows("c1_transform_scaling", &rows).expect("write rows");

    // Shape check: time grows at most ~quadratically between the
    // smallest and largest size (it should be near-linear; this guards
    // against accidental exponential blowup without being flaky).
    let t = |series: &str, smallest: bool| {
        let candidates: Vec<&bench::ExperimentRow> =
            rows.iter().filter(|r| r.series == series).collect();
        let target = if smallest {
            candidates
                .iter()
                .min_by(|a, b| a.x.total_cmp(&b.x))
                .expect("rows")
        } else {
            candidates
                .iter()
                .max_by(|a, b| a.x.total_cmp(&b.x))
                .expect("rows")
        };
        (target.x, target.value)
    };
    for series in ["naive", "memoized"] {
        let (x0, t0) = t(series, true);
        let (x1, t1) = t(series, false);
        let size_ratio = x1 / x0;
        let time_ratio = t1 / t0.max(0.001);
        assert!(
            time_ratio < size_ratio * size_ratio * 4.0,
            "{series}: time ratio {time_ratio:.1} vs size ratio {size_ratio:.1} — \
             transformation is not polynomial-shaped"
        );
    }
}

criterion_group!(benches, bench_transform_scaling);
criterion_main!(benches);
