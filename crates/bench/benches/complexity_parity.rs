//! Experiment C2: "both the complexity and decidability of SHOIN(D)4 are
//! the same as those of SHOIN(D)" (§5). Measured version: reasoning time
//! over a KB read classically vs the same KB read four-valued (i.e. the
//! tableau running on `K̄`). The shape to verify: the four-valued route
//! costs a small constant factor (the induced KB is ≤ 2× the size), not
//! an asymptotic blowup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use shoin4::{InclusionKind, KnowledgeBase4, Reasoner4};
use std::hint::black_box;
use std::time::Instant;
use tableau::Reasoner;

fn bench_complexity_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("C2_complexity_parity");
    group.sample_size(10);
    let mut rows = Vec::new();
    for depth in [2usize, 3, 4] {
        let kb = taxonomy_kb(&TaxonomyParams {
            depth,
            branching: 2,
            sibling_disjointness: true,
            individuals_per_leaf: 1,
        });
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        group.bench_with_input(BenchmarkId::new("classical", depth), &kb, |b, kb| {
            b.iter(|| {
                let mut r = Reasoner::new(black_box(kb));
                black_box(r.is_consistent().expect("within limits"))
            })
        });
        group.bench_with_input(BenchmarkId::new("four_valued", depth), &kb4, |b, kb4| {
            b.iter(|| {
                let r = Reasoner4::new(black_box(kb4));
                black_box(r.is_satisfiable().expect("within limits"))
            })
        });
        for (series, four) in [("classical", false), ("four_valued", true)] {
            let start = Instant::now();
            let reps = 5;
            for _ in 0..reps {
                if four {
                    let r = Reasoner4::new(&kb4);
                    black_box(r.is_satisfiable().expect("ok"));
                } else {
                    let mut r = Reasoner::new(&kb);
                    black_box(r.is_consistent().expect("ok"));
                }
            }
            rows.push(bench::ExperimentRow {
                experiment: "C2".into(),
                x: kb.len() as f64,
                series: series.into(),
                value: start.elapsed().as_micros() as f64 / reps as f64,
                unit: "us/check".into(),
            });
        }
    }
    group.finish();
    bench::write_rows("c2_complexity_parity", &rows).expect("write rows");
}

criterion_group!(benches, bench_complexity_parity);
criterion_main!(benches);
