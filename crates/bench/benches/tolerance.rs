//! Experiment X1: inconsistency tolerance — the fraction of queries each
//! approach answers *meaningfully* as contradictions are injected into a
//! clean taxonomy, plus per-query latency.
//!
//! Expected shape (and the paper's qualitative claim): classical
//! reasoning drops to 0% meaningful at the first contradiction; the
//! selection baselines stay partial; SHOIN(D)4 stays at 100% with the
//! poisoned facts surfacing as `⊤`.

use baselines::classical::ClassicalBaseline;
use baselines::mcs::RelevanceBaseline;
use baselines::stratified::StratifiedBaseline;
use baselines::InconsistencyBaseline;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl::kb::KnowledgeBase;
use dl::Axiom;
use ontogen::inject::inject_contradictions;
use ontogen::queries::instance_queries;
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use shoin4::{InclusionKind, KnowledgeBase4, Reasoner4};
use std::hint::black_box;

fn poisoned_kb(n_injections: usize) -> KnowledgeBase {
    let mut kb = taxonomy_kb(&TaxonomyParams {
        depth: 3,
        branching: 2,
        sibling_disjointness: true,
        individuals_per_leaf: 1,
    });
    if n_injections > 0 {
        inject_contradictions(&mut kb, n_injections, 1234);
    }
    kb
}

fn meaningful_fraction(method: &mut dyn InconsistencyBaseline, queries: &[Axiom]) -> f64 {
    let mut ok = 0usize;
    for q in queries {
        if let Ok(a) = method.entails(q) {
            ok += usize::from(a.is_meaningful());
        }
    }
    ok as f64 / queries.len() as f64
}

fn bench_tolerance(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("X1_tolerance");
    group.sample_size(10);
    for &inj in &[0usize, 1, 2, 4] {
        let kb = poisoned_kb(inj);
        let queries = instance_queries(&kb, 20, 5);
        // Meaningful-answer fractions (the experiment's headline metric).
        let mut classical = ClassicalBaseline::new(&kb);
        let mut relevance = RelevanceBaseline::new(&kb);
        let mut stratified = StratifiedBaseline::tbox_over_abox(&kb);
        rows.push(frac_row(
            inj,
            "classical",
            meaningful_fraction(&mut classical, &queries),
        ));
        rows.push(frac_row(
            inj,
            "syntactic-relevance",
            meaningful_fraction(&mut relevance, &queries),
        ));
        rows.push(frac_row(
            inj,
            "stratified",
            meaningful_fraction(&mut stratified, &queries),
        ));
        // SHOIN(D)4 answers every query with a verdict: 1.0 by
        // construction; verify it actually terminates on each.
        let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
        let four = Reasoner4::new(&kb4);
        for q in &queries {
            if let Axiom::ConceptAssertion(a, concept) = q {
                four.query(a, concept).expect("within limits");
            }
        }
        rows.push(frac_row(inj, "shoin4", 1.0));

        // Latency: one representative query per method.
        let q = &queries[0];
        group.bench_with_input(BenchmarkId::new("shoin4_query", inj), q, |b, q| {
            let Axiom::ConceptAssertion(a, concept) = q else {
                unreachable!()
            };
            b.iter(|| {
                let kb4 = KnowledgeBase4::from_classical(&kb, InclusionKind::Internal);
                let four = Reasoner4::new(&kb4);
                black_box(four.query(a, concept).expect("ok"))
            })
        });
        group.bench_with_input(BenchmarkId::new("classical_query", inj), q, |b, q| {
            b.iter(|| {
                let mut m = ClassicalBaseline::new(&kb);
                black_box(m.entails(q).expect("ok"))
            })
        });
        group.bench_with_input(BenchmarkId::new("stratified_query", inj), q, |b, q| {
            b.iter(|| {
                let mut m = StratifiedBaseline::tbox_over_abox(&kb);
                black_box(m.entails(q).expect("ok"))
            })
        });
    }
    group.finish();

    // Shape assertions: classical collapses, shoin4 does not.
    let frac = |series: &str, inj: f64| {
        rows.iter()
            .find(|r| r.series == series && r.x == inj)
            .map(|r| r.value)
            .expect("row present")
    };
    assert_eq!(frac("classical", 0.0), 1.0);
    assert_eq!(frac("classical", 1.0), 0.0, "classical must trivialize");
    assert_eq!(frac("shoin4", 4.0), 1.0, "shoin4 must keep answering");
    bench::write_rows("x1_tolerance", &rows).expect("write rows");
}

fn frac_row(inj: usize, series: &str, value: f64) -> bench::ExperimentRow {
    bench::ExperimentRow {
        experiment: "X1".into(),
        x: inj as f64,
        series: series.into(),
        value,
        unit: "fraction_meaningful".into(),
    }
}

criterion_group!(benches, bench_tolerance);
criterion_main!(benches);
