//! Experiment X3 (substituted eval): the propositional signed reduction —
//! four-valued entailment via classical DPLL vs exhaustive `4^n`
//! enumeration. The shape to verify: enumeration explodes exponentially
//! in the atom count while the reduction stays flat on these instances —
//! the *reason* the paper's reduction strategy matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fourval::consequence::entails4;
use fourval::prop::Formula;
use fourval::signed::entails4_signed;
use std::hint::black_box;

/// Γ = pairwise exclusions over n atoms plus a chain of internal
/// implications; query: the chain's conclusion.
fn instance(n: usize) -> (Vec<Formula>, Formula) {
    let atoms: Vec<Formula> = (0..n).map(|i| Formula::atom(format!("x{i}"))).collect();
    let mut premises = Vec::new();
    premises.push(atoms[0].clone());
    for w in atoms.windows(2) {
        premises.push(w[0].clone().internal_imp(w[1].clone()));
    }
    (premises, atoms[n - 1].clone())
}

fn bench_signed_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("X3_signed_reduction");
    group.sample_size(10);
    let mut rows = Vec::new();
    for &n in &[4usize, 6, 8, 10] {
        let (premises, conclusion) = instance(n);
        // Both decide the same question…
        assert_eq!(
            entails4_signed(&premises, &conclusion),
            entails4(&premises, &conclusion)
        );
        group.bench_with_input(BenchmarkId::new("enumeration_4_pow_n", n), &n, |b, _| {
            b.iter(|| black_box(entails4(black_box(&premises), &conclusion)))
        });
        group.bench_with_input(BenchmarkId::new("signed_dpll", n), &n, |b, _| {
            b.iter(|| black_box(entails4_signed(black_box(&premises), &conclusion)))
        });
        for (series, f) in [
            ("enumeration", entails4 as fn(&[Formula], &Formula) -> bool),
            ("signed_dpll", entails4_signed),
        ] {
            let start = std::time::Instant::now();
            let reps = 5;
            for _ in 0..reps {
                black_box(f(&premises, &conclusion));
            }
            rows.push(bench::ExperimentRow {
                experiment: "X3".into(),
                x: n as f64,
                series: series.into(),
                value: start.elapsed().as_micros() as f64 / reps as f64,
                unit: "us/query".into(),
            });
        }
    }
    group.finish();
    bench::write_rows("x3_signed_reduction", &rows).expect("write rows");
}

criterion_group!(benches, bench_signed_reduction);
criterion_main!(benches);
