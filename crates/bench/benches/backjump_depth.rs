//! Backjump depth: what dependency-directed backjumping buys on
//! GCI-disjunction-heavy knowledge bases.
//!
//! The workload plants an unconditional contradiction behind a generating
//! rule (`a : P`, `P ⊑ ∃r.X`, `X ⊑ A`, `X ⊑ ¬A`) underneath `k`
//! *irrelevant* global disjunctions `⊤ ⊑ Eᵢ ⊔ Fᵢ`. Branching rules
//! outrank generating rules, so every search must resolve all `k` binary
//! choices before the clash can surface:
//!
//! * the **snapshot** engine backtracks chronologically — the clash
//!   re-arises under every combination of irrelevant choices, ~`2^k`
//!   leaves, one whole-graph clone per tried alternative;
//! * the **trail** engine unions the dep-sets of the clashing facts —
//!   empty, since the poison is ABox-derived — and backjumps straight
//!   past all `k` branch points in one pass, refuting the KB after a
//!   single clash with zero graph clones.
//!
//! Series: `snapshot` / `trail` (both with semantic branching off, to
//! isolate the strategy) and `snapshot_semantic` / `trail_semantic`
//! (semantic branching on — the EXPERIMENTS.md §X5 before/after pair).
//! Also emitted: per-strategy clone counts, the trail backjump count, and
//! `speedup_largest` (snapshot/trail wall-clock at the largest `k`).
//! Writes `target/experiments/backjump_depth.jsonl` and refreshes the
//! committed `BENCH_backjump.json` (skipped under `BENCH_SMOKE=1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl::axiom::{Axiom, RoleExpr};
use dl::kb::KnowledgeBase;
use dl::name::IndividualName;
use dl::Concept;
use std::hint::black_box;
use std::io::Write;
use tableau::{Config, Reasoner, SearchStrategy, Stats};

/// `k` irrelevant global binary disjunctions plus one ABox-rooted
/// contradiction hidden behind an existential.
fn poisoned_kb(k: usize) -> KnowledgeBase {
    let mut axioms = Vec::new();
    for i in 0..k {
        axioms.push(Axiom::ConceptInclusion(
            Concept::Top,
            Concept::atomic(format!("E{i}")).or(Concept::atomic(format!("F{i}"))),
        ));
    }
    axioms.push(Axiom::ConceptInclusion(
        Concept::atomic("P"),
        Concept::some(RoleExpr::named("r"), Concept::atomic("X")),
    ));
    axioms.push(Axiom::ConceptInclusion(
        Concept::atomic("X"),
        Concept::atomic("A"),
    ));
    axioms.push(Axiom::ConceptInclusion(
        Concept::atomic("X"),
        Concept::atomic("A").not(),
    ));
    axioms.push(Axiom::ConceptAssertion(
        IndividualName::new("a"),
        Concept::atomic("P"),
    ));
    KnowledgeBase::from_axioms(axioms)
}

fn configurations() -> Vec<(&'static str, Config)> {
    let cfg = |search, semantic_branching| Config {
        search,
        semantic_branching,
        ..Config::default()
    };
    vec![
        ("snapshot", cfg(SearchStrategy::Snapshot, false)),
        ("trail", cfg(SearchStrategy::Trail, false)),
        ("snapshot_semantic", cfg(SearchStrategy::Snapshot, true)),
        ("trail_semantic", cfg(SearchStrategy::Trail, true)),
    ]
}

/// One full consistency refutation; returns the search counters.
fn run_refutation(kb: &KnowledgeBase, config: &Config) -> Stats {
    let mut r = Reasoner::with_config(kb, config.clone());
    let verdict = r.is_consistent().expect("within limits");
    assert!(!verdict, "the poisoned KB must be inconsistent");
    black_box(r.stats())
}

fn timed_us(kb: &KnowledgeBase, config: &Config, reps: u32) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        run_refutation(kb, config);
    }
    start.elapsed().as_micros() as f64 / reps as f64
}

fn bench_backjump_depth(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let depths: &[usize] = if smoke { &[4] } else { &[4, 8, 12] };
    let mut rows = Vec::new();
    let mut largest: Option<(f64, f64)> = None; // (snapshot, trail) us

    let mut group = c.benchmark_group("backjump_depth");
    group.sample_size(10);
    for &k in depths {
        let kb = poisoned_kb(k);
        for (series, config) in configurations() {
            // Criterion statistics only at the smallest depth: the
            // snapshot series at depth 12 is ~2^12 leaves per iteration.
            if k == depths[0] {
                group.bench_with_input(BenchmarkId::new(series, k), &kb, |b, kb| {
                    b.iter(|| run_refutation(kb, &config))
                });
            }
            let reps = if series.starts_with("snapshot") && !smoke {
                2
            } else {
                5
            };
            let us = timed_us(&kb, &config, reps);
            rows.push(bench::ExperimentRow {
                experiment: "backjump_depth".into(),
                x: k as f64,
                series: series.into(),
                value: us,
                unit: "us/refutation".into(),
            });
            let stats = run_refutation(&kb, &config);
            rows.push(bench::ExperimentRow {
                experiment: "backjump_depth".into(),
                x: k as f64,
                series: format!("{series}_clones"),
                value: stats.graph_clones as f64,
                unit: "clones".into(),
            });
            if series == "trail" {
                rows.push(bench::ExperimentRow {
                    experiment: "backjump_depth".into(),
                    x: k as f64,
                    series: "trail_backjumps".into(),
                    value: stats.backjumps as f64,
                    unit: "backjumps".into(),
                });
            }
            if k == *depths.last().expect("nonempty") {
                match series {
                    "snapshot" => largest = Some((us, f64::NAN)),
                    "trail" => {
                        if let Some((snap, _)) = largest {
                            largest = Some((snap, us));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    group.finish();

    if let Some((snap, trail)) = largest {
        rows.push(bench::ExperimentRow {
            experiment: "backjump_depth".into(),
            x: *depths.last().expect("nonempty") as f64,
            series: "speedup_largest".into(),
            value: snap / trail,
            unit: "x".into(),
        });
    }
    bench::write_rows("backjump_depth", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backjump.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"backjump_depth\",").expect("write");
        writeln!(f, "  \"unit\": \"us/refutation\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_backjump_depth);
criterion_main!(benches);
