//! Module-scoped query execution vs the unscoped engine, on ontogen's
//! modular corpus (disjoint islands, one contaminated). The measured
//! workload is the scoping sweet spot the dataflow analysis exists for:
//! instance queries about *clean* islands, which under
//! `Config::module_scoping` run the tableau on one island's axioms
//! instead of the whole KB.
//!
//! Both series run with the told fast path, the entailment cache and
//! model pruning disabled (`jobs = 1`), so the comparison isolates the
//! module effect: identical tableau, identical query plan, different
//! axiom set per search.
//!
//! Besides the Criterion group this writes summary rows to
//! `target/experiments/module_extraction.jsonl` and refreshes the
//! committed snapshot `BENCH_modules.json` at the repo root (including
//! the `speedup_largest` row EXPERIMENTS.md cites). Set `BENCH_SMOKE=1`
//! to shrink the series for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl::name::IndividualName;
use dl::Concept;
use ontogen::modular::{modular_kb4, ModularParams, PlantedPartition};
use shoin4::reasoner4::QueryOptions;
use shoin4::{KnowledgeBase4, Reasoner4};
use std::hint::black_box;
use std::io::Write;
use tableau::Config;

fn corpus(n_islands: usize) -> (KnowledgeBase4, PlantedPartition) {
    modular_kb4(&ModularParams {
        seed: 7,
        n_islands,
        island_tbox: 8,
        island_abox: 12,
        contaminated_islands: 1,
    })
}

/// Two instance queries per clean island (capped at four islands so the
/// query count stays fixed while the KB grows — scaling isolates the
/// per-query cost of dragging ever more irrelevant axioms along).
fn clean_queries(truth: &PlantedPartition) -> Vec<(IndividualName, Concept)> {
    let mut queries = Vec::new();
    for &island in truth.clean().iter().take(4) {
        let x = truth.island_individuals[island][0].clone();
        for name in [
            &truth.island_concepts[island][1],
            &truth.island_concepts[island][3],
        ] {
            queries.push((x.clone(), Concept::atomic(name.clone())));
        }
    }
    queries
}

fn reasoner(kb: &KnowledgeBase4, module_scoping: bool) -> Reasoner4 {
    let config = Config {
        model_pruning: false,
        module_scoping,
        // Measure scoping against the plain tableau: with the Horn fast
        // path on (the default) Horn modules would bypass the scoped
        // search being measured (that path has its own bench,
        // `horn_scaling`).
        horn_path: false,
        ..Config::default()
    };
    let opts = QueryOptions {
        jobs: 1,
        told_fast_path: false,
        entailment_cache: false,
    };
    Reasoner4::with_options(kb, config, opts)
}

/// One full pass over the query set on a fresh reasoner (fresh so the
/// scoped series pays its module-extraction cost every time — the
/// speedup reported is extraction-inclusive).
fn run_queries(kb: &KnowledgeBase4, queries: &[(IndividualName, Concept)], scoped: bool) {
    let r = reasoner(kb, scoped);
    for (a, c) in queries {
        black_box(r.query(a, c).expect("within limits"));
    }
}

fn timed_us_per_query(
    kb: &KnowledgeBase4,
    queries: &[(IndividualName, Concept)],
    scoped: bool,
    reps: u32,
) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        run_queries(kb, queries, scoped);
    }
    start.elapsed().as_micros() as f64 / (reps as usize * queries.len()) as f64
}

fn bench_module_extraction(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let sizes: &[usize] = if smoke { &[3] } else { &[4, 8, 16] };
    let mut rows = Vec::new();
    let mut largest = (f64::NAN, f64::NAN); // (unscoped, scoped) us/query

    let mut group = c.benchmark_group("module_extraction");
    group.sample_size(10);
    for &n_islands in sizes {
        let (kb, truth) = corpus(n_islands);
        let queries = clean_queries(&truth);
        let n = kb.len();
        for scoped in [false, true] {
            let series = if scoped { "scoped" } else { "unscoped" };
            if n_islands == sizes[0] {
                group.bench_with_input(BenchmarkId::new(series, n), &kb, |b, kb| {
                    b.iter(|| run_queries(kb, &queries, scoped))
                });
            }
            let reps = if scoped || smoke { 3 } else { 2 };
            let us = timed_us_per_query(&kb, &queries, scoped, reps);
            rows.push(bench::ExperimentRow {
                experiment: "module_extraction".into(),
                x: n as f64,
                series: series.into(),
                value: us,
                unit: "us/query".into(),
            });
            if n_islands == *sizes.last().expect("nonempty") {
                if scoped {
                    largest.1 = us;
                } else {
                    largest.0 = us;
                }
            }
        }
    }
    group.finish();

    let (unscoped, scoped) = largest;
    rows.push(bench::ExperimentRow {
        experiment: "module_extraction".into(),
        x: corpus(*sizes.last().expect("nonempty")).0.len() as f64,
        series: "speedup_largest".into(),
        value: unscoped / scoped,
        unit: "x".into(),
    });
    bench::write_rows("module_extraction", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_modules.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"module_extraction\",").expect("write");
        writeln!(f, "  \"unit\": \"us/query\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_module_extraction);
criterion_main!(benches);
