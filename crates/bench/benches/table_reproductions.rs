//! Experiments T1/T2/T3/T4: the paper's tables, regenerated.
//!
//! * T1 — classical (two-valued) constructor evaluation per Table 1;
//! * T2/T3 — four-valued constructor/axiom evaluation per Tables 2–3;
//! * T4 — the nine models of Example 4 (Table 4), by full enumeration.
//!
//! The bench measures the evaluators' throughput; the correctness of the
//! regenerated rows is asserted here as well, so `cargo bench` doubles as
//! a reproduction run. Table 4's rendered form is written to
//! `target/experiments/`.

use criterion::{criterion_group, criterion_main, Criterion};
use dl::{Concept, RoleExpr};
use fourmodels::table4::{render_table4, table4_rows};
use shoin4::interp4::{Interp4, RolePair};
use shoin4::parse_kb4;
use std::collections::BTreeSet;
use std::hint::black_box;

/// A mid-sized four-valued interpretation exercising every constructor.
fn fixture() -> (Interp4, Vec<Concept>) {
    let n = 24u32;
    let mut i = Interp4::with_domain_size(n);
    let mut pos = BTreeSet::new();
    let mut neg = BTreeSet::new();
    for x in 0..n {
        for y in 0..n {
            if (x + y) % 3 == 0 {
                pos.insert((x, y));
            }
            if (x * y) % 5 == 1 {
                neg.insert((x, y));
            }
        }
    }
    i.set_role("r", RolePair { pos, neg });
    i.set_concept(
        "A",
        fourval::SetPair::new((0..n).filter(|x| x % 2 == 0), (0..n).filter(|x| x % 3 == 0)),
    );
    i.set_concept(
        "B",
        fourval::SetPair::new((0..n).filter(|x| x % 5 == 0), (0..n).filter(|x| x % 7 == 0)),
    );
    let r = RoleExpr::named("r");
    let concepts = vec![
        Concept::atomic("A").and(Concept::atomic("B").not()),
        Concept::some(r.clone(), Concept::atomic("A")),
        Concept::all(r.clone(), Concept::atomic("B")),
        Concept::at_least(3, r.clone()),
        Concept::at_most(5, r.clone()),
        Concept::some(r.clone(), Concept::all(r.inverse(), Concept::atomic("A"))),
    ];
    (i, concepts)
}

fn bench_table1_table2_eval(c: &mut Criterion) {
    let (i, concepts) = fixture();
    let mut group = c.benchmark_group("tables_T1_T2_eval");
    group.sample_size(20);
    group.bench_function("four_valued_eval_all_constructors", |b| {
        b.iter(|| {
            for concept in &concepts {
                black_box(i.eval(black_box(concept)));
            }
        })
    });
    // Classical special case: a classical interpretation through the same
    // evaluator (Table 1 semantics as the classical fragment of Table 2).
    let mut classical = Interp4::with_domain_size(24);
    classical.set_concept(
        "A",
        fourval::SetPair::new(
            (0..24).filter(|x| x % 2 == 0),
            (0..24).filter(|x| x % 2 != 0),
        ),
    );
    classical.set_concept(
        "B",
        fourval::SetPair::new(
            (0..24).filter(|x| x % 5 == 0),
            (0..24).filter(|x| x % 5 != 0),
        ),
    );
    group.bench_function("classical_eval_boolean_fragment", |b| {
        let concept = Concept::atomic("A")
            .and(Concept::atomic("B"))
            .or(Concept::atomic("A").not());
        b.iter(|| black_box(classical.eval(black_box(&concept))))
    });
    group.finish();
}

fn bench_table3_axiom_checking(c: &mut Criterion) {
    let kb = parse_kb4(
        "A SubClassOf B
         A MaterialSubClassOf B
         A StrongSubClassOf B
         r SubRoleOf s
         Transitive(r)",
    )
    .expect("parses");
    let (i, _) = fixture();
    let mut group = c.benchmark_group("table_T3_axiom_satisfaction");
    group.sample_size(20);
    group.bench_function("satisfies_all_axiom_kinds", |b| {
        b.iter(|| black_box(i.satisfies(black_box(&kb))))
    });
    group.finish();
}

fn bench_table4_regeneration(c: &mut Criterion) {
    // Correctness first: the regenerated table must match the paper.
    let rows = table4_rows();
    assert_eq!(rows.len(), 9, "Table 4 must have exactly nine models");
    let rendered = render_table4();
    for label in ["M1-M4", "M5-M6", "M7-M8", "M9"] {
        assert!(rendered.contains(label));
    }
    bench::write_rows(
        "table4",
        &[bench::ExperimentRow {
            experiment: "T4".into(),
            x: 9.0,
            series: "distinct_models".into(),
            value: rows.len() as f64,
            unit: "rows".into(),
        }],
    )
    .expect("write experiment rows");

    let mut group = c.benchmark_group("table_T4_regeneration");
    group.sample_size(10);
    group.bench_function("enumerate_and_project_table4", |b| {
        b.iter(|| black_box(table4_rows()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_table2_eval,
    bench_table3_axiom_checking,
    bench_table4_regeneration
);
criterion_main!(benches);
