//! The consequence-driven Horn fast path vs the module-scoped tableau,
//! on ontogen's connected Horn corpus (`ontogen::horn`). Connectivity
//! makes this the regime the fast path exists for: every query module
//! drags in most of the terminology, so the scoped tableau re-searches
//! a KB-sized axiom set per query while the saturation engine compiles
//! the module once, saturates the goal-relevant slice once, and answers
//! repeat queries from memoized closures.
//!
//! Both series run with the told fast path, the entailment cache and
//! model pruning disabled (`jobs = 1`), and both pay module extraction
//! inside the measurement (fresh reasoner per pass), so the comparison
//! isolates saturation-vs-search on identical query plans.
//!
//! Besides the Criterion group this writes summary rows to
//! `target/experiments/horn_scaling.jsonl` and refreshes the committed
//! snapshot `BENCH_horn.json` at the repo root (including the
//! `speedup_largest` row EXPERIMENTS.md §X7 cites). Set `BENCH_SMOKE=1`
//! to shrink the series for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl::name::IndividualName;
use dl::Concept;
use ontogen::horn::{horn_kb4, HornParams};
use shoin4::reasoner4::QueryOptions;
use shoin4::{KnowledgeBase4, Reasoner4};
use std::hint::black_box;
use std::io::Write;
use tableau::Config;

fn corpus(n: usize) -> KnowledgeBase4 {
    horn_kb4(&HornParams {
        n_concepts: 2 * n,
        n_roles: 3,
        n_individuals: n,
        n_tbox: 4 * n,
        n_abox: 2 * n,
        strong_rate: 0.3,
        material_rate: 0.0,
        disjunction_rate: 0.0,
        seed: 7,
    })
}

/// A fixed grid of instance queries: a few individuals from along the
/// role chain against concepts spread over the ladder. The count stays
/// constant as the KB grows, so scaling isolates per-query cost.
fn queries(p: &HornParams) -> Vec<(IndividualName, Concept)> {
    let mut queries = Vec::new();
    for i in 0..4usize {
        let a = IndividualName::new(format!("h{}", i * p.n_individuals / 4));
        for j in 0..8usize {
            let c = Concept::atomic(format!("H{}", j * p.n_concepts / 8));
            queries.push((a.clone(), c));
        }
    }
    queries
}

fn reasoner(kb: &KnowledgeBase4, horn: bool) -> Reasoner4 {
    let config = Config {
        model_pruning: false,
        // The baseline is the *scoped* tableau — the strongest tableau
        // configuration for this corpus — so the reported speedup is
        // saturation over search, not saturation over a handicap.
        module_scoping: !horn,
        horn_path: horn,
        ..Config::default()
    };
    let opts = QueryOptions {
        jobs: 1,
        told_fast_path: false,
        entailment_cache: false,
    };
    Reasoner4::with_options(kb, config, opts)
}

/// One full pass over the query set on a fresh reasoner (fresh so both
/// series pay module extraction — and the Horn series its compilation
/// and saturation — inside the measurement).
fn run_queries(kb: &KnowledgeBase4, queries: &[(IndividualName, Concept)], horn: bool) {
    let r = reasoner(kb, horn);
    for (a, c) in queries {
        black_box(r.query(a, c).expect("within limits"));
    }
}

fn timed_us_per_query(
    kb: &KnowledgeBase4,
    queries: &[(IndividualName, Concept)],
    horn: bool,
    reps: u32,
) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        run_queries(kb, queries, horn);
    }
    start.elapsed().as_micros() as f64 / (reps as usize * queries.len()) as f64
}

fn bench_horn_scaling(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let sizes: &[usize] = if smoke { &[4] } else { &[8, 16, 32] };
    let mut rows = Vec::new();
    let mut largest = (f64::NAN, f64::NAN); // (scoped tableau, horn) us/query

    let mut group = c.benchmark_group("horn_scaling");
    group.sample_size(10);
    for &n in sizes {
        let kb = corpus(n);
        let p = HornParams {
            n_concepts: 2 * n,
            n_individuals: n,
            ..HornParams::default()
        };
        let qs = queries(&p);
        let len = kb.len();
        // The routed reasoner must saturate, never fall back, on this
        // corpus — the zero-fallback acceptance gate, enforced where the
        // numbers are produced.
        let probe = reasoner(&kb, true);
        for (a, c) in &qs {
            probe.query(a, c).expect("within limits");
        }
        let stats = probe.stats();
        assert!(stats.horn_queries > 0, "fast path never engaged");
        assert_eq!(stats.horn_fallbacks, 0, "non-Horn module in Horn corpus");
        for horn in [false, true] {
            let series = if horn { "horn" } else { "scoped-tableau" };
            if n == sizes[0] {
                group.bench_with_input(BenchmarkId::new(series, len), &kb, |b, kb| {
                    b.iter(|| run_queries(kb, &qs, horn))
                });
            }
            let reps = if horn || smoke { 5 } else { 2 };
            let us = timed_us_per_query(&kb, &qs, horn, reps);
            rows.push(bench::ExperimentRow {
                experiment: "horn_scaling".into(),
                x: len as f64,
                series: series.into(),
                value: us,
                unit: "us/query".into(),
            });
            if n == *sizes.last().expect("nonempty") {
                if horn {
                    largest.1 = us;
                } else {
                    largest.0 = us;
                }
            }
        }
    }
    group.finish();

    let (tableau_us, horn_us) = largest;
    rows.push(bench::ExperimentRow {
        experiment: "horn_scaling".into(),
        x: corpus(*sizes.last().expect("nonempty")).len() as f64,
        series: "speedup_largest".into(),
        value: tableau_us / horn_us,
        unit: "x".into(),
    });
    bench::write_rows("horn_scaling", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_horn.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"horn_scaling\",").expect("write");
        writeln!(f, "  \"unit\": \"us/query\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_horn_scaling);
criterion_main!(benches);
