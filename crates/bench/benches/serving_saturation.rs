//! The serving layer under load: client-observed latency across fleet
//! sizes, cross-tenant cache sharing, admission-control shedding, and
//! hostile-tenant isolation — all measured over real TCP connections
//! against a [`shoin4::serve::Server`].
//!
//! Three phases, each asserting its claim where the numbers are made:
//!
//! 1. **Saturation sweep** — `tenant_fleet` fleets (half the tenants
//!    share an identical core island) at ≥ 3 sizes; concurrent clients
//!    walk every tenant and record per-request wall latency. The bench
//!    asserts the shared cache's cross-tenant hit ratio is strictly
//!    positive on every fleet — structurally identical modules must be
//!    built once, not per tenant.
//! 2. **Shedding** — a one-worker, one-slot server fed a concurrent
//!    burst must reject with typed `overloaded` replies (counted), not
//!    block or crash.
//! 3. **Hostile isolation** — a tenant whose KB is an `∃`-doubling
//!    budget-exhauster shares the server with fair tenants. A canceller
//!    thread revokes the hostile tenant's in-flight work; the bench
//!    asserts every hostile reply is a typed `cancelled`/`budget`
//!    error, at least one was really cancelled mid-search, and the fair
//!    tenants' p99 under attack stays within 2× of their baseline p99
//!    or one hostile budget quantum, whichever is larger (on a
//!    single-core runner a µs-scale ratio only measures the
//!    scheduler).
//!
//! Besides the Criterion group this writes summary rows to
//! `target/experiments/serving_saturation.jsonl` and refreshes the
//! committed snapshot `BENCH_serving.json` at the repo root. Set
//! `BENCH_SMOKE=1` to shrink the series for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jsonio::Value;
use ontogen::tenant::{tenant_fleet, TenantFleet, TenantFleetParams};
use shoin4::serve::{hostile_kb, Registry, ServeOptions, Server};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tableau::Config;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> Value {
        // Single write per request (mirrors the server's single-write
        // replies): two small segments per line would stall on the
        // Nagle / delayed-ACK interaction and measure the kernel's
        // timers instead of the serving layer.
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        Value::parse(&reply).unwrap_or_else(|e| panic!("bad reply {reply:?}: {e}"))
    }
}

fn percentile_us(latencies: &mut [Duration], p: f64) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[idx].as_secs_f64() * 1e6
}

fn fleet(tenants: usize) -> TenantFleet {
    tenant_fleet(&TenantFleetParams {
        tenants,
        shared_core_rate: 0.5,
        ..TenantFleetParams::default()
    })
}

/// The three measured probes for one tenant, built from its own
/// signature: a told-path atomic query, a compound query that exercises
/// module extraction + the shared cache, and a satisfiability check.
fn tenant_probes(kb: &shoin4::KnowledgeBase4) -> Vec<String> {
    let sig = kb.signature();
    let a = sig.individuals.iter().next().expect("inhabited tenant");
    let mut cs = sig.concepts.iter();
    let (c0, c1) = (
        cs.next().expect("concepts"),
        cs.next().expect("two concepts"),
    );
    vec![
        format!("query {a} {c0}"),
        format!("query {a} {c0} and {c1}"),
        "check".to_string(),
    ]
}

/// Walk every tenant once over `clients` concurrent connections,
/// recording client-observed latency per admitted request.
fn run_fleet_pass(addr: SocketAddr, fleet: &TenantFleet, clients: usize) -> Vec<Duration> {
    let latencies = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for stride in 0..clients {
            let latencies = &latencies;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut local = Vec::new();
                for (id, kb) in fleet.tenants.iter().skip(stride).step_by(clients) {
                    client.ask(&format!("tenant {id}"));
                    for probe in tenant_probes(kb) {
                        let start = Instant::now();
                        let reply = client.ask(&probe);
                        local.push(start.elapsed());
                        assert_eq!(
                            reply.get("ok").and_then(Value::as_bool),
                            Some(true),
                            "{probe:?} failed: {reply}"
                        );
                    }
                }
                client.ask("quit");
                latencies.lock().expect("collector").append(&mut local);
            });
        }
    });
    latencies.into_inner().expect("collector")
}

fn saturation_sweep(sizes: &[usize], rows: &mut Vec<bench::ExperimentRow>) {
    for &n in sizes {
        let fleet = fleet(n);
        let registry = Arc::new(Registry::new(Config::default()));
        for (id, kb) in &fleet.tenants {
            assert!(registry.register(id, kb));
        }
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServeOptions {
                workers: 4,
                queue_depth: 256,
                lanes: None,
            },
        )
        .expect("bind");
        let mut latencies = run_fleet_pass(server.local_addr(), &fleet, 4);

        let shared = registry.shared().stats();
        assert!(
            shared.hit_ratio() > 0.0,
            "fleet of {n} with a shared core produced no cross-tenant hits: {shared:?}"
        );
        let row = |series: &str, value: f64, unit: &str| bench::ExperimentRow {
            experiment: "serving_saturation".into(),
            x: n as f64,
            series: series.into(),
            value,
            unit: unit.into(),
        };
        rows.push(row("p50", percentile_us(&mut latencies, 0.50), "us"));
        rows.push(row("p99", percentile_us(&mut latencies, 0.99), "us"));
        rows.push(row("shared_hit_ratio", shared.hit_ratio(), "ratio"));
        server.shutdown();
    }
}

fn shedding_phase(rows: &mut Vec<bench::ExperimentRow>) {
    let config = Config {
        time_budget: Some(Duration::from_millis(25)),
        ..Config::default()
    };
    let registry = Arc::new(Registry::new(config));
    registry.register("evil", &hostile_kb(40));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            lanes: None,
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    // Four clients hammer the one-slot server; budget-exhausting
    // requests hold the worker for 25ms each, so the surplus must shed.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.ask("tenant evil");
                for _ in 0..10 {
                    let reply = client.ask("check");
                    let code = reply.get("error").and_then(Value::as_str);
                    assert!(
                        matches!(code, Some("overloaded" | "budget" | "cancelled")),
                        "unexpected reply under saturation: {reply}"
                    );
                }
            });
        }
    });
    let shed = server.stats().shed.load(Ordering::Relaxed);
    assert!(shed > 0, "a saturated one-slot server never shed");
    rows.push(bench::ExperimentRow {
        experiment: "serving_saturation".into(),
        x: 40.0,
        series: "shed_requests".into(),
        value: shed as f64,
        unit: "count".into(),
    });
    server.shutdown();
}

fn hostile_isolation(rows: &mut Vec<bench::ExperimentRow>) {
    const FAIR: usize = 4;
    let config = Config {
        time_budget: Some(Duration::from_millis(25)),
        ..Config::default()
    };
    let fleet = fleet(FAIR);
    let registry = Arc::new(Registry::new(config));
    for (id, kb) in &fleet.tenants {
        registry.register(id, kb);
    }
    registry.register("evil", &hostile_kb(40));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeOptions {
            workers: 2,
            queue_depth: 64,
            lanes: None,
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Baseline: fair tenants alone, several passes so the percentile
    // has real support (the first pass also warms every cache, so
    // baseline and attack measure steady state, not module builds).
    const PASSES: usize = 10;
    run_fleet_pass(addr, &fleet, 2);
    let mut base = Vec::new();
    for _ in 0..PASSES {
        base.append(&mut run_fleet_pass(addr, &fleet, 2));
    }
    let p99_base = percentile_us(&mut base, 0.99);

    // Attack: a hostile client hammers its budget-exhausting KB while a
    // canceller keeps revoking the tenant's in-flight work. Fair passes
    // repeat until the hostile tenant has demonstrably cycled several
    // times — the pass itself is now so fast that a single one could
    // end before the hostile client ever gets a request in.
    let stop = Arc::new(AtomicBool::new(false));
    let hostile_done = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let (p99_attack, hostile_outcomes) = std::thread::scope(|scope| {
        let canceller = {
            let stop = Arc::clone(&stop);
            let server = &server;
            scope.spawn(move || {
                let mut revoked = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    revoked += server.cancel_tenant("evil");
                    std::thread::sleep(Duration::from_millis(1));
                }
                revoked
            })
        };
        let hostile = {
            let stop = Arc::clone(&stop);
            let done = Arc::clone(&hostile_done);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.ask("tenant evil");
                let (mut total, mut typed) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let reply = client.ask("check");
                    total += 1;
                    let code = reply.get("error").and_then(Value::as_str);
                    if matches!(code, Some("cancelled" | "budget")) {
                        typed += 1;
                    }
                    done.store(total, Ordering::Relaxed);
                }
                (total, typed)
            })
        };
        let mut attack = Vec::new();
        let mut passes = 0;
        while passes < PASSES || (hostile_done.load(Ordering::Relaxed) < 4 && passes < 200) {
            attack.append(&mut run_fleet_pass(addr, &fleet, 2));
            passes += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let revoked = canceller.join().expect("canceller");
        let outcomes = hostile.join().expect("hostile client");
        assert!(
            revoked > 0,
            "the canceller never found hostile work in flight"
        );
        (percentile_us(&mut attack, 0.99), outcomes)
    });

    let (hostile_total, hostile_typed) = hostile_outcomes;
    assert!(
        hostile_total > 0,
        "the hostile client never got a request in"
    );
    assert_eq!(
        hostile_typed, hostile_total,
        "every hostile reply must be a typed cancelled/budget error"
    );
    let cancelled = server.stats().cancelled.load(Ordering::Relaxed);
    assert!(
        cancelled >= 1,
        "no hostile search was demonstrably cancelled mid-flight"
    );
    // The isolation bound: within 2× of baseline, or — when the
    // baseline is so fast that a ratio would only measure the CPU
    // scheduler (a single-core runner time-shares the hostile search
    // with everything else) — within one hostile budget quantum, the
    // worst head-of-line wait a budget-bounded search can inflict.
    let budget_us = 25_000.0;
    assert!(
        p99_attack <= (2.0 * p99_base).max(budget_us),
        "hostile tenant degraded fair p99 beyond 2× and a budget quantum: \
         {p99_base:.0}us → {p99_attack:.0}us"
    );
    let row = |series: &str, value: f64, unit: &str| bench::ExperimentRow {
        experiment: "serving_saturation".into(),
        x: FAIR as f64,
        series: series.into(),
        value,
        unit: unit.into(),
    };
    rows.push(row("fair_p99_baseline", p99_base, "us"));
    rows.push(row("fair_p99_under_attack", p99_attack, "us"));
    rows.push(row("hostile_requests", hostile_total as f64, "count"));
    rows.push(row("hostile_cancelled_searches", cancelled as f64, "count"));
    server.shutdown();
}

fn bench_serving_saturation(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let sizes: &[usize] = if smoke { &[4] } else { &[8, 32, 128] };
    let mut rows = Vec::new();

    // Criterion group: one full client pass over the smallest fleet
    // (connection + per-tenant probes over live TCP).
    let small = fleet(sizes[0]);
    let registry = Arc::new(Registry::new(Config::default()));
    for (id, kb) in &small.tenants {
        registry.register(id, kb);
    }
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServeOptions::default(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut group = c.benchmark_group("serving_saturation");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("fleet_pass", small.tenants.len()),
        &small,
        |b, fl| b.iter(|| black_box(run_fleet_pass(addr, fl, 2).len())),
    );
    group.finish();
    server.shutdown();

    saturation_sweep(sizes, &mut rows);
    shedding_phase(&mut rows);
    hostile_isolation(&mut rows);

    bench::write_rows("serving_saturation", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"serving_saturation\",").expect("write");
        writeln!(f, "  \"unit\": \"us\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_serving_saturation);
criterion_main!(benches);
