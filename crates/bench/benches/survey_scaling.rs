//! Survey scaling: the contradiction survey (`contradiction_report`,
//! the workload behind `shoin4 report`) over growing ontogen KBs, under
//! three pipeline configurations:
//!
//! * `sequential` — the pre-engine behaviour: one tableau search per
//!   classical entailment check, no threads, no caches, no pruning;
//! * `parallel` — worker threads striping the query grid, but still one
//!   search per check (isolates the thread dividend, which is ~1 on a
//!   single-core runner);
//! * `pruned` — the full pipeline: threads *plus* the shared base-model
//!   cache (one completed graph refutes most non-entailments without a
//!   search), the told-information fast path and the entailment cache.
//!
//! Besides the Criterion groups this writes summary rows to
//! `target/experiments/survey_scaling.jsonl` and refreshes the committed
//! snapshot `BENCH_survey.json` at the repo root (including the
//! `speedup_largest` row EXPERIMENTS.md cites). Set `BENCH_SMOKE=1` to
//! shrink the series for CI smoke runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontogen::lintseed::{lint_seeded_kb4, LintSeedParams};
use shoin4::analysis::contradiction_report;
use shoin4::reasoner4::QueryOptions;
use shoin4::{KnowledgeBase4, Reasoner4};
use std::hint::black_box;
use std::io::Write;
use tableau::Config;

/// A survey workload: a lint-seeded KB of roughly `4.5 * size` axioms
/// with planted contradictions scattered through a subsumption chain.
fn survey_kb(size: usize) -> KnowledgeBase4 {
    let (kb, _) = lint_seeded_kb4(&LintSeedParams {
        seed: 11,
        n_clean_tbox: size,
        n_clean_abox: 3 * size,
        n_contested_direct: size / 6 + 1,
        n_contested_chained: size / 10 + 1,
        n_contested_roles: 1,
        n_duplicates: 1,
        n_cycles: 1,
        n_orphans: 2,
    });
    kb
}

/// The three measured configurations as `(series, config, options)`.
fn configurations() -> Vec<(&'static str, Config, QueryOptions)> {
    let plain = Config {
        model_pruning: false,
        ..Config::default()
    };
    vec![
        ("sequential", plain.clone(), QueryOptions::baseline()),
        (
            "parallel",
            plain,
            QueryOptions {
                jobs: 0,
                told_fast_path: false,
                entailment_cache: false,
            },
        ),
        ("pruned", Config::default(), QueryOptions::default()),
    ]
}

fn run_survey(kb: &KnowledgeBase4, config: &Config, opts: &QueryOptions) {
    let r = Reasoner4::with_options(kb, config.clone(), opts.clone());
    black_box(contradiction_report(&r, kb).expect("within limits"));
}

fn timed_survey_us(kb: &KnowledgeBase4, config: &Config, opts: &QueryOptions, reps: u32) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        run_survey(kb, config, opts);
    }
    start.elapsed().as_micros() as f64 / reps as f64
}

fn bench_survey_scaling(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let sizes: &[usize] = if smoke { &[6] } else { &[8, 16, 32] };
    let mut rows = Vec::new();
    let mut largest: Option<(f64, f64)> = None; // (sequential, pruned) us

    let mut group = c.benchmark_group("survey_scaling");
    group.sample_size(10);
    for &size in sizes {
        let kb = survey_kb(size);
        let n = kb.len();
        for (series, config, opts) in configurations() {
            // Criterion statistics only for the smallest instance: the
            // sequential series on the larger ones is exactly the slow
            // path this experiment exists to retire.
            if size == sizes[0] {
                group.bench_with_input(BenchmarkId::new(series, n), &kb, |b, kb| {
                    b.iter(|| run_survey(kb, &config, &opts))
                });
            }
            let reps = if series == "sequential" && !smoke {
                2
            } else {
                3
            };
            let us = timed_survey_us(&kb, &config, &opts, reps);
            rows.push(bench::ExperimentRow {
                experiment: "survey_scaling".into(),
                x: n as f64,
                series: series.into(),
                value: us,
                unit: "us/survey".into(),
            });
            if size == *sizes.last().expect("nonempty") {
                match series {
                    "sequential" => largest = Some((us, f64::NAN)),
                    "pruned" => {
                        if let Some((seq, _)) = largest {
                            largest = Some((seq, us));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    group.finish();

    if let Some((seq, pruned)) = largest {
        rows.push(bench::ExperimentRow {
            experiment: "survey_scaling".into(),
            x: survey_kb(*sizes.last().expect("nonempty")).len() as f64,
            series: "speedup_largest".into(),
            value: seq / pruned,
            unit: "x".into(),
        });
    }
    bench::write_rows("survey_scaling", &rows).expect("write rows");

    // Committed snapshot (skipped for smoke runs so CI never clobbers
    // the checked-in numbers with reduced-size measurements).
    if !smoke {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_survey.json");
        let mut f = std::fs::File::create(path).expect("snapshot file");
        writeln!(f, "{{").expect("write");
        writeln!(f, "  \"experiment\": \"survey_scaling\",").expect("write");
        writeln!(f, "  \"unit\": \"us/survey\",").expect("write");
        writeln!(f, "  \"rows\": [").expect("write");
        for (i, row) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", row.to_json()).expect("write");
        }
        writeln!(f, "  ]").expect("write");
        writeln!(f, "}}").expect("write");
    }
}

criterion_group!(benches, bench_survey_scaling);
criterion_main!(benches);
