//! Experiment X2 + the design-choice ablations (DESIGN.md §5): tableau
//! satisfiability cost as the workload grows, and the impact of the
//! blocking strategy, semantic branching and absorption knobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl::parser::parse_kb;
use ontogen::random::{random_kb, RandomParams};
use ontogen::taxonomy::{taxonomy_kb, TaxonomyParams};
use std::hint::black_box;
use tableau::config::BlockingStrategy;
use tableau::{Config, Reasoner};

fn bench_scaling_axioms(c: &mut Criterion) {
    let mut group = c.benchmark_group("X2_scaling_axioms");
    group.sample_size(10);
    let mut rows = Vec::new();

    // Structured, realistic series: taxonomies of growing depth.
    for depth in [2usize, 3, 4] {
        let kb = taxonomy_kb(&TaxonomyParams {
            depth,
            branching: 2,
            sibling_disjointness: true,
            individuals_per_leaf: 1,
        });
        let n = kb.len();
        group.bench_with_input(BenchmarkId::new("taxonomy", n), &kb, |b, kb| {
            b.iter(|| {
                let mut r = Reasoner::new(black_box(kb));
                black_box(r.is_consistent().expect("within limits"))
            })
        });
        let start = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let mut r = Reasoner::new(&kb);
            black_box(r.is_consistent().expect("ok"));
        }
        rows.push(bench::ExperimentRow {
            experiment: "X2".into(),
            x: n as f64,
            series: "taxonomy".into(),
            value: start.elapsed().as_micros() as f64 / reps as f64,
            unit: "us/check".into(),
        });
    }

    // Random series, shallow and number-restriction-free. Random KBs can
    // be adversarial — without dependency-directed backjumping an unsat
    // proof may explore an exponential choice tree (a documented
    // limitation; the logic is NExpTime-complete) — so each instance is
    // probed under a tight rule budget first and recorded as a skip if it
    // blows that budget.
    for &n in &[10usize, 20, 40] {
        let kb = random_kb(&RandomParams {
            n_tbox: n,
            n_abox: n,
            n_concepts: n.max(8),
            max_depth: 1,
            number_restrictions: false,
            seed: 7,
            ..RandomParams::default()
        });
        let probe_cfg = Config {
            max_rule_applications: 100_000,
            ..Config::default()
        };
        let probe = Reasoner::with_config(&kb, probe_cfg).is_consistent();
        if probe.is_err() {
            rows.push(bench::ExperimentRow {
                experiment: "X2".into(),
                x: (2 * n) as f64,
                series: "random_skipped".into(),
                value: f64::NAN,
                unit: "us/check".into(),
            });
            continue;
        }
        group.bench_with_input(BenchmarkId::new("random", n), &kb, |b, kb| {
            b.iter(|| {
                let mut r = Reasoner::new(black_box(kb));
                black_box(r.is_consistent().expect("probed"))
            })
        });
        let start = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let mut r = Reasoner::new(&kb);
            black_box(r.is_consistent().expect("probed"));
        }
        rows.push(bench::ExperimentRow {
            experiment: "X2".into(),
            x: (2 * n) as f64,
            series: "random".into(),
            value: start.elapsed().as_micros() as f64 / reps as f64,
            unit: "us/check".into(),
        });
    }
    group.finish();
    bench::write_rows("x2_tableau_scaling", &rows).expect("write rows");
}

fn bench_ablation_blocking(c: &mut Criterion) {
    // A TBox with an infinite canonical model: blocking does the work.
    let kb = parse_kb(
        "Person SubClassOf hasParent some Person
         Person SubClassOf hasAncestor some (Person and Ancient)
         Ancient SubClassOf hasParent some Ancient
         p : Person",
    )
    .expect("parses");
    let mut group = c.benchmark_group("ablation_blocking");
    group.sample_size(10);
    for (name, strategy) in [
        ("pairwise", BlockingStrategy::Pairwise),
        ("equality", BlockingStrategy::Equality),
        ("subset", BlockingStrategy::Subset),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = Config {
                    blocking: strategy,
                    ..Config::default()
                };
                let mut r = Reasoner::with_config(&kb, cfg);
                black_box(r.is_consistent().expect("within limits"))
            })
        });
    }
    group.finish();
}

fn bench_ablation_branching(c: &mut Criterion) {
    // Disjunction-heavy unsatisfiable pigeonhole-ish input where semantic
    // branching prunes repeated work.
    let kb = parse_kb("x : (A or B) and (A or not B) and (not A or B) and (not A or not B)")
        .expect("parses");
    let mut group = c.benchmark_group("ablation_semantic_branching");
    group.sample_size(20);
    for (name, semantic) in [("syntactic", false), ("semantic", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = Config {
                    semantic_branching: semantic,
                    ..Config::default()
                };
                let mut r = Reasoner::with_config(&kb, cfg);
                black_box(r.is_consistent().expect("within limits"))
            })
        });
    }
    group.finish();
}

fn bench_ablation_absorption(c: &mut Criterion) {
    let kb = taxonomy_kb(&TaxonomyParams {
        depth: 4,
        branching: 2,
        sibling_disjointness: false,
        individuals_per_leaf: 1,
    });
    let mut group = c.benchmark_group("ablation_absorption");
    group.sample_size(10);
    for (name, absorption) in [("absorbed", true), ("internalized", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = Config {
                    absorption,
                    ..Config::default()
                };
                let mut r = Reasoner::with_config(&kb, cfg);
                black_box(r.is_consistent().expect("within limits"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_axioms,
    bench_ablation_blocking,
    bench_ablation_branching,
    bench_ablation_absorption
);
criterion_main!(benches);
