//! Summarize the machine-generated experiment rows
//! (`target/experiments/*.jsonl`, written by the benches) into markdown
//! tables — the data half of EXPERIMENTS.md.
//!
//! The committed repo-root snapshots (`BENCH_*.json` — e.g.
//! `BENCH_modules.json`, `BENCH_horn.json`) are read first as the
//! baseline, so the summary is complete even before any local bench
//! run; rows are appended on every bench run and the summarizer keeps
//! the *last* row per (experiment, series, x), i.e. the most recent
//! local measurement wins over the snapshot.

use std::collections::BTreeMap;
use std::path::Path;

/// Parse one committed snapshot (`{"experiment": …, "rows": [ … ]}`)
/// into experiment rows; `None` if the file isn't in snapshot shape.
fn snapshot_rows(text: &str) -> Option<Vec<bench::ExperimentRow>> {
    let v = jsonio::Value::parse(text).ok()?;
    v.get("rows")?
        .as_array()?
        .iter()
        .map(bench::ExperimentRow::from_json)
        .collect()
}

fn main() -> std::io::Result<()> {
    let mut latest: BTreeMap<(String, String, u64), (f64, String)> = BTreeMap::new();
    for entry in std::fs::read_dir(".")? {
        let path = entry?.path();
        let is_snapshot = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"));
        if !is_snapshot {
            continue;
        }
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| snapshot_rows(&t))
        {
            Some(rows) => {
                for row in rows {
                    latest.insert(
                        (row.experiment, row.series, row.x.to_bits()),
                        (row.value, row.unit),
                    );
                }
            }
            None => eprintln!("skipping malformed snapshot {path:?}"),
        }
    }
    let dir = Path::new("target").join("experiments");
    if dir.exists() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "jsonl") {
                continue;
            }
            for line in std::fs::read_to_string(&path)?.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let row = match jsonio::Value::parse(line)
                    .ok()
                    .as_ref()
                    .and_then(bench::ExperimentRow::from_json)
                {
                    Some(r) => r,
                    None => {
                        eprintln!("skipping malformed row in {path:?}");
                        continue;
                    }
                };
                latest.insert(
                    (row.experiment, row.series, row.x.to_bits()),
                    (row.value, row.unit),
                );
            }
        }
    }
    if latest.is_empty() {
        println!("(no experiment rows found — run `cargo bench --workspace` first)");
        return Ok(());
    }
    // Group by experiment.
    let mut by_exp: BTreeMap<String, Vec<(String, f64, f64, String)>> = BTreeMap::new();
    for ((exp, series, xbits), (value, unit)) in latest {
        by_exp
            .entry(exp)
            .or_default()
            .push((series, f64::from_bits(xbits), value, unit));
    }
    for (exp, mut rows) in by_exp {
        rows.sort_by(|a, b| {
            (a.0.clone(), a.1.total_cmp(&b.1))
                .partial_cmp(&(b.0.clone(), b.1.total_cmp(&b.1)))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        println!("### Experiment {exp}\n");
        println!("| series | x | value | unit |");
        println!("|---|---:|---:|---|");
        for (series, x, value, unit) in rows {
            if value.is_nan() {
                println!("| {series} | {x} | (skipped) | {unit} |");
            } else {
                println!("| {series} | {x} | {value:.1} | {unit} |");
            }
        }
        println!();
    }
    Ok(())
}
