//! Shared support for the benchmark harness.
//!
//! The actual benchmarks live in `benches/` (one Criterion target per
//! experiment id from DESIGN.md §3). This library provides the pieces
//! they share: experiment-row records serialized to JSON so EXPERIMENTS.md
//! can cite machine-generated numbers.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// One measured row of an experiment, written to `target/experiments/`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRow {
    /// Experiment id from DESIGN.md (e.g. "C1", "X1").
    pub experiment: String,
    /// The independent variable (size, rate, …).
    pub x: f64,
    /// Label of the series (method/config name).
    pub series: String,
    /// The measured value.
    pub value: f64,
    /// Unit of `value`.
    pub unit: String,
}

/// Append rows to `target/experiments/<name>.jsonl` (one JSON object per
/// line). Benches call this with their summary rows so the repo's
/// EXPERIMENTS.md numbers are regenerable.
pub fn write_rows(name: &str, rows: &[ExperimentRow]) -> std::io::Result<()> {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for row in rows {
        let line = serde_json::to_string(row).expect("rows serialize");
        writeln!(f, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_to_json() {
        let row = ExperimentRow {
            experiment: "C1".into(),
            x: 100.0,
            series: "memoized".into(),
            value: 1.5,
            unit: "us".into(),
        };
        let s = serde_json::to_string(&row).unwrap();
        assert!(s.contains("\"experiment\":\"C1\""));
    }
}
