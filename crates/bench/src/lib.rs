//! Shared support for the benchmark harness.
//!
//! The actual benchmarks live in `benches/` (one Criterion target per
//! experiment id from DESIGN.md §3). This library provides the pieces
//! they share: experiment-row records serialized to JSON so EXPERIMENTS.md
//! can cite machine-generated numbers.

use jsonio::Value;
use std::io::Write;
use std::path::Path;

/// One measured row of an experiment, written to `target/experiments/`.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Experiment id from DESIGN.md (e.g. "C1", "X1").
    pub experiment: String,
    /// The independent variable (size, rate, …).
    pub x: f64,
    /// Label of the series (method/config name).
    pub series: String,
    /// The measured value.
    pub value: f64,
    /// Unit of `value`.
    pub unit: String,
}

impl ExperimentRow {
    /// The row as a JSON object (one `jsonl` line).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("experiment", Value::from(self.experiment.as_str())),
            ("x", Value::from(self.x)),
            ("series", Value::from(self.series.as_str())),
            ("value", Value::from(self.value)),
            ("unit", Value::from(self.unit.as_str())),
        ])
    }

    /// Parse a row back from a JSON object.
    pub fn from_json(v: &Value) -> Option<ExperimentRow> {
        Some(ExperimentRow {
            experiment: v.get("experiment")?.as_str()?.to_string(),
            x: v.get("x")?.as_f64()?,
            series: v.get("series")?.as_str()?.to_string(),
            value: v.get("value")?.as_f64()?,
            unit: v.get("unit")?.as_str()?.to_string(),
        })
    }
}

/// Append rows to `target/experiments/<name>.jsonl` (one JSON object per
/// line). Benches call this with their summary rows so the repo's
/// EXPERIMENTS.md numbers are regenerable.
pub fn write_rows(name: &str, rows: &[ExperimentRow]) -> std::io::Result<()> {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for row in rows {
        writeln!(f, "{}", row.to_json())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_to_json() {
        let row = ExperimentRow {
            experiment: "C1".into(),
            x: 100.0,
            series: "memoized".into(),
            value: 1.5,
            unit: "us".into(),
        };
        let s = row.to_json().to_string();
        assert!(s.contains("\"experiment\":\"C1\""), "{s}");
        let back = ExperimentRow::from_json(&jsonio::Value::parse(&s).unwrap()).unwrap();
        assert_eq!(back.x, row.x);
        assert_eq!(back.series, row.series);
    }
}
