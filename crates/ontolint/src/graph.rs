//! Shared combinatorial machinery: the told-subsumption graph over atomic
//! concepts (with axiom provenance on every edge) and a small union-find
//! for individual-equality reasoning.
//!
//! The implementation moved to [`shoin4::told`] so the reasoner's told
//! fast path can use it without depending on this crate; this module
//! re-exports it under the original paths.

pub use shoin4::told::{
    close_memberships, told_cycles, Closure, Derived, Edge, ToldGraph, ToldIndex, UnionFind,
};
