//! Shared combinatorial machinery: the told-subsumption graph over atomic
//! concepts (with axiom provenance on every edge) and a small union-find
//! for individual-equality reasoning.

use dl::name::ConceptName;
use dl::Concept;
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One told-subsumption edge `from ⟶ to`, read off an inclusion axiom
/// whose sides are atomic (or a negated atomic on the right).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Target concept name.
    pub to: ConceptName,
    /// The inclusion kind of the originating axiom.
    pub kind: InclusionKind,
    /// Index of the originating axiom in `kb.axioms()`.
    pub axiom: usize,
}

/// The told-subsumption graph of a KB: only inclusions between atomic
/// concepts (positive edges, `A ⟶ B`) or from an atomic to a negated
/// atomic (negative edges, `A ⟶ ¬B`) are represented — the fragment on
/// which closure is sound without any real reasoning.
#[derive(Debug, Default)]
pub struct ToldGraph {
    /// `A ⊑ B`: positive information flows forward.
    pub pos_edges: BTreeMap<ConceptName, Vec<Edge>>,
    /// `A ⊑ ¬B`: positive information about `A` is negative about `B`.
    pub neg_edges: BTreeMap<ConceptName, Vec<Edge>>,
    /// Reverse of `pos_edges`, for the contrapositive (strong) direction.
    pub rev_pos_edges: BTreeMap<ConceptName, Vec<Edge>>,
}

impl ToldGraph {
    /// Read the told edges off the KB.
    pub fn build(kb: &KnowledgeBase4) -> ToldGraph {
        let mut g = ToldGraph::default();
        for (i, ax) in kb.axioms().iter().enumerate() {
            let Axiom4::ConceptInclusion(kind, lhs, rhs) = ax else {
                continue;
            };
            let Concept::Atomic(from) = lhs else { continue };
            match rhs {
                Concept::Atomic(to) => {
                    g.pos_edges.entry(from.clone()).or_default().push(Edge {
                        to: to.clone(),
                        kind: *kind,
                        axiom: i,
                    });
                    g.rev_pos_edges.entry(to.clone()).or_default().push(Edge {
                        to: from.clone(),
                        kind: *kind,
                        axiom: i,
                    });
                }
                Concept::Not(inner) => {
                    if let Concept::Atomic(to) = &**inner {
                        g.neg_edges.entry(from.clone()).or_default().push(Edge {
                            to: to.clone(),
                            kind: *kind,
                            axiom: i,
                        });
                    }
                }
                _ => {}
            }
        }
        g
    }
}

/// A derived membership fact with its provenance.
#[derive(Debug, Clone)]
pub struct Derived {
    /// Axiom indices whose conjunction justifies the fact.
    pub axioms: Vec<usize>,
    /// Did the derivation pass through a `Material` inclusion? (If so the
    /// conclusion is defeasible — material inclusions tolerate exceptions.)
    pub via_material: bool,
    /// Was the fact asserted directly (no inclusion edge used)?
    pub direct: bool,
}

/// Closure of one individual's told concept memberships.
///
/// `pos` holds names `B` with derived positive information (`a ∈ pos(B)`),
/// `neg` names with derived negative information (`a ∈ neg(B)`). With
/// `allow_material = false` every derivation is a sound consequence of the
/// four-valued semantics; with `true`, material links are followed too and
/// the result is only a "likely" consequence.
pub fn close_memberships(
    graph: &ToldGraph,
    pos_seeds: &[(ConceptName, usize)],
    neg_seeds: &[(ConceptName, usize)],
    allow_material: bool,
) -> (
    BTreeMap<ConceptName, Derived>,
    BTreeMap<ConceptName, Derived>,
) {
    let follow = |kind: InclusionKind| allow_material || kind != InclusionKind::Material;
    let mut pos: BTreeMap<ConceptName, Derived> = BTreeMap::new();
    let mut neg: BTreeMap<ConceptName, Derived> = BTreeMap::new();
    let mut queue: VecDeque<(ConceptName, bool)> = VecDeque::new();
    for (name, ax) in pos_seeds {
        pos.entry(name.clone()).or_insert_with(|| {
            queue.push_back((name.clone(), true));
            Derived {
                axioms: vec![*ax],
                via_material: false,
                direct: true,
            }
        });
    }
    for (name, ax) in neg_seeds {
        neg.entry(name.clone()).or_insert_with(|| {
            queue.push_back((name.clone(), false));
            Derived {
                axioms: vec![*ax],
                via_material: false,
                direct: true,
            }
        });
    }
    while let Some((name, positive)) = queue.pop_front() {
        if positive {
            let from = pos[&name].clone();
            // a ∈ pos(A), A ⊑ B  ⟹  a ∈ pos(B).
            for e in graph.pos_edges.get(&name).into_iter().flatten() {
                if follow(e.kind) && !pos.contains_key(&e.to) {
                    pos.insert(e.to.clone(), extend(&from, e));
                    queue.push_back((e.to.clone(), true));
                }
            }
            // a ∈ pos(A), A ⊑ ¬B  ⟹  a ∈ neg(B).
            for e in graph.neg_edges.get(&name).into_iter().flatten() {
                if follow(e.kind) && !neg.contains_key(&e.to) {
                    neg.insert(e.to.clone(), extend(&from, e));
                    queue.push_back((e.to.clone(), false));
                }
            }
        } else {
            // a ∈ neg(B), A → B strong  ⟹  a ∈ neg(A) (contraposition;
            // only strong inclusions propagate negative information back).
            let from = neg[&name].clone();
            for e in graph.rev_pos_edges.get(&name).into_iter().flatten() {
                if e.kind == InclusionKind::Strong && !neg.contains_key(&e.to) {
                    neg.insert(e.to.clone(), extend(&from, e));
                    queue.push_back((e.to.clone(), false));
                }
            }
        }
    }
    (pos, neg)
}

fn extend(from: &Derived, e: &Edge) -> Derived {
    let mut axioms = from.axioms.clone();
    axioms.push(e.axiom);
    Derived {
        axioms,
        via_material: from.via_material || e.kind == InclusionKind::Material,
        direct: false,
    }
}

/// Strongly connected components (size ≥ 2) of the positive told graph —
/// the cyclic-subsumption detector. Kosaraju's algorithm, iterative.
pub fn told_cycles(graph: &ToldGraph) -> Vec<BTreeSet<ConceptName>> {
    let mut nodes: BTreeSet<ConceptName> = BTreeSet::new();
    for (from, es) in &graph.pos_edges {
        nodes.insert(from.clone());
        nodes.extend(es.iter().map(|e| e.to.clone()));
    }
    // First pass: finish order on the forward graph.
    let mut finished: Vec<ConceptName> = Vec::new();
    let mut seen: BTreeSet<ConceptName> = BTreeSet::new();
    for start in &nodes {
        if seen.contains(start) {
            continue;
        }
        let mut stack = vec![(start.clone(), false)];
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                finished.push(n);
                continue;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            stack.push((n.clone(), true));
            for e in graph.pos_edges.get(&n).into_iter().flatten() {
                if !seen.contains(&e.to) {
                    stack.push((e.to.clone(), false));
                }
            }
        }
    }
    // Second pass: components on the reverse graph, in reverse finish order.
    let mut out = Vec::new();
    let mut assigned: BTreeSet<ConceptName> = BTreeSet::new();
    for root in finished.iter().rev() {
        if assigned.contains(root) {
            continue;
        }
        let mut component = BTreeSet::new();
        let mut stack = vec![root.clone()];
        while let Some(n) = stack.pop() {
            if !assigned.insert(n.clone()) {
                continue;
            }
            component.insert(n.clone());
            for e in graph.rev_pos_edges.get(&n).into_iter().flatten() {
                if !assigned.contains(&e.to) {
                    stack.push(e.to.clone());
                }
            }
        }
        if component.len() >= 2 {
            out.push(component);
        }
    }
    out
}

/// A union-find over individual names, tracking the axiom indices that
/// justify each merge (coarsely: all axioms that merged into a class).
#[derive(Debug, Default)]
pub struct UnionFind {
    parent: BTreeMap<String, String>,
    axioms: BTreeMap<String, BTreeSet<usize>>,
}

impl UnionFind {
    /// Root of `x`'s class (path-halving on the string keys).
    pub fn find(&mut self, x: &str) -> String {
        let mut cur = x.to_string();
        loop {
            match self.parent.get(&cur) {
                Some(p) if *p != cur => {
                    let gp = self.parent.get(p).cloned().unwrap_or_else(|| p.clone());
                    self.parent.insert(cur.clone(), gp.clone());
                    cur = gp;
                }
                Some(_) => return cur,
                None => {
                    self.parent.insert(cur.clone(), cur.clone());
                    return cur;
                }
            }
        }
    }

    /// Merge the classes of `a` and `b`, recording the justifying axiom.
    pub fn union(&mut self, a: &str, b: &str, axiom: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            self.axioms.entry(ra).or_default().insert(axiom);
            return;
        }
        let moved = self.axioms.remove(&rb).unwrap_or_default();
        self.parent.insert(rb, ra.clone());
        let entry = self.axioms.entry(ra).or_default();
        entry.extend(moved);
        entry.insert(axiom);
    }

    /// Are `a` and `b` in the same class?
    pub fn connected(&mut self, a: &str, b: &str) -> bool {
        self.find(a) == self.find(b)
    }

    /// The merge axioms recorded for `x`'s class.
    pub fn class_axioms(&mut self, x: &str) -> Vec<usize> {
        let root = self.find(x);
        self.axioms
            .get(&root)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::parse_kb4;

    #[test]
    fn closure_follows_internal_chains() {
        let kb = parse_kb4("A SubClassOf B\nB SubClassOf C\nx : A").unwrap();
        let g = ToldGraph::build(&kb);
        let (pos, neg) = close_memberships(&g, &[(ConceptName::new("A"), 2)], &[], false);
        assert!(pos.contains_key(&ConceptName::new("C")));
        assert_eq!(pos[&ConceptName::new("C")].axioms, vec![2, 0, 1]);
        assert!(neg.is_empty());
    }

    #[test]
    fn closure_skips_material_unless_allowed() {
        let kb = parse_kb4("A MaterialSubClassOf B\nx : A").unwrap();
        let g = ToldGraph::build(&kb);
        let seeds = [(ConceptName::new("A"), 1)];
        let (pos, _) = close_memberships(&g, &seeds, &[], false);
        assert!(!pos.contains_key(&ConceptName::new("B")));
        let (pos, _) = close_memberships(&g, &seeds, &[], true);
        assert!(pos[&ConceptName::new("B")].via_material);
    }

    #[test]
    fn strong_inclusions_contrapose() {
        // A → B and a ∈ neg(B) gives a ∈ neg(A).
        let kb = parse_kb4("A StrongSubClassOf B\nx : not B").unwrap();
        let g = ToldGraph::build(&kb);
        let (_, neg) = close_memberships(&g, &[], &[(ConceptName::new("B"), 1)], false);
        assert!(neg.contains_key(&ConceptName::new("A")));
    }

    #[test]
    fn internal_inclusions_do_not_contrapose() {
        let kb = parse_kb4("A SubClassOf B\nx : not B").unwrap();
        let g = ToldGraph::build(&kb);
        let (_, neg) = close_memberships(&g, &[], &[(ConceptName::new("B"), 1)], false);
        assert!(!neg.contains_key(&ConceptName::new("A")));
    }

    #[test]
    fn cycles_found_as_components() {
        let kb =
            parse_kb4("A SubClassOf B\nB SubClassOf C\nC SubClassOf A\nD SubClassOf A").unwrap();
        let g = ToldGraph::build(&kb);
        let cycles = told_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
        assert!(!cycles[0].contains(&ConceptName::new("D")));
    }

    #[test]
    fn union_find_merges_and_tracks_axioms() {
        let mut uf = UnionFind::default();
        uf.union("a", "b", 0);
        uf.union("c", "d", 1);
        assert!(uf.connected("a", "b"));
        assert!(!uf.connected("a", "c"));
        uf.union("b", "c", 2);
        assert!(uf.connected("a", "d"));
        assert_eq!(uf.class_axioms("d"), vec![0, 1, 2]);
    }
}
