//! Module-extraction based rules: dead axioms (OL301), disconnected
//! axiom groups (OL302), and module-blowup anomalies (OL304).
//!
//! [`Module`] extraction itself ([`shoin4::dataflow`], re-exported
//! here) is the `⊤`-locality fixpoint the reasoner uses for query
//! scoping; the linter turns its *global* consequences into
//! diagnostics. All three rules are `Info` — none of them claims a
//! defect, so the zero-false-positive `Error` contract is untouched
//! (the semantic guarantee behind modules is machine-checked in
//! `tests/module_parity.rs` instead, by pinning every scoped verdict
//! against the unscoped engine and the `fourmodels` oracle).

pub use shoin4::dataflow::{Admission, Module, ModuleExtractor};

use crate::dataflow::signature::full_signature_seed;
use crate::diagnostics::{Diagnostic, Severity};
use shoin4::told::ToldGraph;
use shoin4::{Axiom4, KnowledgeBase4};
use std::collections::BTreeSet;

/// OL304 fires when a concept's module is at least this many times its
/// told cone…
pub const OL304_FACTOR: usize = 4;
/// …and at least this large in absolute terms.
pub const OL304_MIN_MODULE: usize = 8;
/// At most this many OL304 candidate concepts are examined (sorted
/// order, so the choice is deterministic); the rule is a per-concept
/// module extraction and must stay inside the lint time budget.
pub const OL304_MAX_CANDIDATES: usize = 32;

/// OL301: axioms outside the module of the *full* signature seed. By
/// module monotonicity they are outside the module of every query over
/// the KB's names — no four-valued verdict can change when they are
/// dropped.
pub fn check_dead_axioms(
    kb: &KnowledgeBase4,
    extractor: &ModuleExtractor,
    out: &mut Vec<Diagnostic>,
) {
    let full = extractor.extract(&full_signature_seed(kb));
    for i in 0..kb.len() {
        if full.axioms.contains(&i) {
            continue;
        }
        out.push(Diagnostic {
            rule: "OL301",
            severity: Severity::Info,
            axioms: vec![i],
            subject: None,
            message: "axiom is dead: it lies outside the module of every query \
                      over the KB's signature"
                .to_string(),
            suggestion: Some(
                "the axiom is ⊤-local against the full signature (e.g. a `⊑ Thing` \
                 consequence); deleting it changes no verdict"
                    .to_string(),
            ),
            claim: None,
        });
    }
}

/// OL302: connected components of the shared-atom axiom graph beyond
/// the largest one. Axioms in different components cannot influence
/// each other through any chain of names — the KB is a disjoint union
/// of independent ontologies.
pub fn check_disconnected(extractor: &ModuleExtractor, out: &mut Vec<Diagnostic>) {
    let comps = extractor.graph().components();
    if comps.len() <= 1 {
        return;
    }
    for comp in &comps[1..] {
        out.push(Diagnostic {
            rule: "OL302",
            severity: Severity::Info,
            axioms: comp.clone(),
            subject: None,
            message: format!(
                "disconnected axiom group ({} of {} axioms): shares no signature \
                 atom with the rest of the KB",
                comp.len(),
                extractor.graph().len(),
            ),
            suggestion: Some(
                "independent regions are fine (module scoping exploits them), but \
                 an unintended split often indicates a typo in a bridging name"
                    .to_string(),
            ),
            claim: None,
        });
    }
}

/// OL304: a concept whose extracted module dwarfs its told cone — the
/// atomic-inclusion neighbourhood a reader (and the told fast path)
/// sees. Complex axioms couple the name far beyond its apparent
/// hierarchy, which makes queries about it unexpectedly expensive and
/// reviews unexpectedly non-local.
pub fn check_module_blowup(
    kb: &KnowledgeBase4,
    extractor: &ModuleExtractor,
    out: &mut Vec<Diagnostic>,
) {
    // Candidates: atomic concepts occurring in some inclusion with a
    // complex side — only those can out-couple their told cone.
    let mut candidates: BTreeSet<dl::ConceptName> = BTreeSet::new();
    for ax in kb.axioms() {
        if let Axiom4::ConceptInclusion(_, lhs, rhs) = ax {
            if !matches!(lhs, dl::Concept::Atomic(_)) || !matches!(rhs, dl::Concept::Atomic(_)) {
                for side in [lhs, rhs] {
                    candidates.extend(side.concept_names());
                }
            }
        }
    }
    let graph = ToldGraph::build(kb);
    for name in candidates.into_iter().take(OL304_MAX_CANDIDATES) {
        let module = extractor.extract(&shoin4::dataflow::concept_seed(&dl::Concept::Atomic(
            name.clone(),
        )));
        let cone = told_cone(&graph, kb, &name);
        if module.axioms.len() >= OL304_MIN_MODULE
            && module.axioms.len() >= OL304_FACTOR * cone.len().max(1)
        {
            let extra: Vec<usize> = module.axioms.difference(&cone).copied().collect();
            out.push(Diagnostic {
                rule: "OL304",
                severity: Severity::Info,
                axioms: extra,
                subject: Some(name.to_string()),
                message: format!(
                    "queries about `{name}` depend on a module of {} axioms, {}× its \
                     told neighbourhood of {}",
                    module.axioms.len(),
                    module.axioms.len() / cone.len().max(1),
                    cone.len(),
                ),
                suggestion: Some(
                    "complex inclusions couple this name far beyond its atomic \
                     hierarchy; consider splitting the coupling axioms if locality \
                     matters"
                        .to_string(),
                ),
                claim: None,
            });
        }
    }
}

/// The told cone of a concept: axioms on told edges reachable from it
/// (forward, contrapositive and negative) plus direct assertions about
/// reachable names — the "apparent" dependency set of the name.
fn told_cone(graph: &ToldGraph, kb: &KnowledgeBase4, name: &dl::ConceptName) -> BTreeSet<usize> {
    let mut names: BTreeSet<dl::ConceptName> = BTreeSet::from([name.clone()]);
    let mut axioms: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<dl::ConceptName> = vec![name.clone()];
    while let Some(n) = queue.pop() {
        for edges in [
            graph.pos_edges.get(&n),
            graph.rev_pos_edges.get(&n),
            graph.neg_edges.get(&n),
        ]
        .into_iter()
        .flatten()
        {
            for e in edges {
                axioms.insert(e.axiom);
                if names.insert(e.to.clone()) {
                    queue.push(e.to.clone());
                }
            }
        }
    }
    for (i, ax) in kb.axioms().iter().enumerate() {
        if let Axiom4::ConceptAssertion(_, c) = ax {
            if c.concept_names().iter().any(|n| names.contains(n)) {
                axioms.insert(i);
            }
        }
    }
    axioms
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::parse_kb4;

    fn run_all(src: &str) -> Vec<Diagnostic> {
        let kb = parse_kb4(src).unwrap();
        let extractor = ModuleExtractor::new(&kb);
        let mut out = Vec::new();
        check_dead_axioms(&kb, &extractor, &mut out);
        check_disconnected(&extractor, &mut out);
        check_module_blowup(&kb, &extractor, &mut out);
        out
    }

    #[test]
    fn ol301_flags_top_local_axioms_only() {
        let diags = run_all(
            "A SubClassOf Thing
             B and Nothing SubClassOf C
             A SubClassOf B
             x : A",
        );
        let dead: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "OL301").collect();
        assert_eq!(dead.len(), 2);
        assert_eq!(dead[0].axioms, vec![0]);
        assert_eq!(dead[1].axioms, vec![1]);
    }

    #[test]
    fn ol302_flags_each_extra_component() {
        let diags = run_all(
            "A SubClassOf B
             x : A
             C SubClassOf D
             E SubClassOf F",
        );
        let comps: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "OL302").collect();
        // Three islands: the largest is unflagged, the other two are.
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn connected_kb_yields_no_ol302() {
        let diags = run_all(
            "A SubClassOf B
             B SubClassOf C
             x : A",
        );
        assert!(diags.iter().all(|d| d.rule != "OL302"));
    }

    #[test]
    fn ol304_flags_complexly_coupled_concepts() {
        // `Hub`'s told cone is empty (no atomic-to-atomic inclusion),
        // but complex inclusions couple it to a large region.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("S{i} and T{i} SubClassOf Hub\n"));
            src.push_str(&format!("x{i} : S{i}\n"));
        }
        let diags = run_all(&src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "OL304" && d.subject.as_deref() == Some("Hub")),
            "{diags:?}"
        );
    }

    #[test]
    fn plain_hierarchies_yield_no_ol304() {
        let diags = run_all(
            "A SubClassOf B
             B SubClassOf C
             C SubClassOf D
             x : A
             y : B",
        );
        assert!(diags.iter().all(|d| d.rule != "OL304"));
    }
}
