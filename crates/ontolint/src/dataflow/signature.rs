//! Polarity-aware signature atoms and the axiom dependency graph.
//!
//! The machinery lives in [`shoin4::dataflow`] (the reasoner's
//! module-scoped query execution uses it without depending on this
//! crate — the same layering as [`crate::graph`] / `shoin4::told`);
//! this module re-exports it under the linter's paths and adds the
//! lint-facing helpers.

pub use shoin4::dataflow::{
    classical_axiom_atoms, classical_concept_atoms, concept_seed, full_signature_seed, AxiomKind,
    DepGraph, SigAtom,
};

use shoin4::KnowledgeBase4;

/// The atomic concepts of the KB's unsplit signature, sorted — the
/// per-name axis along which the dataflow rules report (contamination
/// radii, module sizes).
pub fn signature_concepts(kb: &KnowledgeBase4) -> Vec<dl::ConceptName> {
    kb.signature().concepts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::parse_kb4;

    #[test]
    fn reexports_resolve_and_agree_with_core() {
        let kb = parse_kb4("A SubClassOf B\nx : A").unwrap();
        let g = DepGraph::build(&kb);
        assert_eq!(g.len(), 2);
        assert!(g.atoms[0].contains(&SigAtom::ConceptPos(dl::ConceptName::new("A"))));
        assert_eq!(signature_concepts(&kb).len(), 2);
    }
}
