//! Contested-signature propagation: flow "contested" markers from
//! OL00x contradiction seeds along signature-dependency edges, yielding
//! per-name contamination radii and a clean/contaminated partition of
//! the KB — the static complement of the paper's localization claim
//! (a contradiction only threatens conclusions *reachable* from it).
//!
//! The propagation is a multi-source BFS over the shared-atom axiom
//! graph, so "radius" is counted in dependency hops: radius 0 is the
//! contradicting axioms themselves, radius 1 the axioms sharing a
//! signature atom with them, and so on. Axioms the BFS never reaches
//! form the **clean region**: no chain of shared names connects them to
//! any detected contradiction, so (by the module argument in
//! [`shoin4::dataflow`]) their verdicts are what they would be in a KB
//! with the contaminated region deleted.

use crate::dataflow::signature::{DepGraph, SigAtom};
use crate::diagnostics::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// OL303 fires when contamination spreads at least this many hops from
/// a contradiction seed.
pub const OL303_RADIUS_THRESHOLD: usize = 3;

/// The result of contested-signature propagation.
#[derive(Debug, Clone)]
pub struct Contamination {
    /// Seed axiom indices (from OL00x `Error` diagnostics), sorted.
    pub seeds: Vec<usize>,
    /// Per-axiom BFS distance from the nearest seed (`None` = clean).
    pub distance: Vec<Option<usize>>,
    /// Per-atom contamination radius: the smallest distance of any
    /// axiom mentioning the atom. Names absent here are untouched.
    pub name_radius: BTreeMap<SigAtom, usize>,
    /// Axioms reachable from a seed, sorted.
    pub contaminated: Vec<usize>,
    /// The rest, sorted.
    pub clean: Vec<usize>,
}

impl Contamination {
    /// The largest finite distance (0 when only seeds are contaminated;
    /// `None` when there are no seeds at all).
    pub fn max_radius(&self) -> Option<usize> {
        self.distance.iter().flatten().max().copied()
    }
}

/// Propagate contested markers from `seeds` along shared-atom edges.
pub fn propagate(graph: &DepGraph, seeds: &[usize]) -> Contamination {
    let n = graph.len();
    let mut distance: Vec<Option<usize>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut sorted_seeds: Vec<usize> = seeds.iter().copied().filter(|&i| i < n).collect();
    sorted_seeds.sort_unstable();
    sorted_seeds.dedup();
    for &s in &sorted_seeds {
        distance[s] = Some(0);
        queue.push_back(s);
    }
    while let Some(i) = queue.pop_front() {
        let d = distance[i].expect("queued axioms have a distance");
        for atom in &graph.atoms[i] {
            for &j in &graph.by_atom[atom] {
                if distance[j].is_none() {
                    distance[j] = Some(d + 1);
                    queue.push_back(j);
                }
            }
        }
    }
    let mut name_radius: BTreeMap<SigAtom, usize> = BTreeMap::new();
    for (i, d) in distance.iter().enumerate() {
        if let Some(d) = d {
            for atom in &graph.atoms[i] {
                name_radius
                    .entry(atom.clone())
                    .and_modify(|r| *r = (*r).min(*d))
                    .or_insert(*d);
            }
        }
    }
    let (contaminated, clean): (Vec<usize>, Vec<usize>) =
        (0..n).partition(|&i| distance[i].is_some());
    Contamination {
        seeds: sorted_seeds,
        distance,
        name_radius,
        contaminated,
        clean,
    }
}

/// The contradiction seeds of a diagnostic set: every axiom implicated
/// by an `Error`-severity OL00x finding.
pub fn contradiction_seeds(diags: &[Diagnostic]) -> Vec<usize> {
    let mut seeds: BTreeSet<usize> = BTreeSet::new();
    for d in diags {
        if d.severity == Severity::Error && d.rule.starts_with("OL0") {
            seeds.extend(d.axioms.iter().copied());
        }
    }
    seeds.into_iter().collect()
}

/// OL303: the contamination front of some contradiction travelled at
/// least [`OL303_RADIUS_THRESHOLD`] dependency hops — conclusions far
/// from the contested fact are exposed to it. `Warning`, not `Error`:
/// reachability is a may-depend over-approximation, the four-valued
/// semantics often stops the spread earlier (that is the paper's
/// point).
pub fn check_radius(graph: &DepGraph, prior: &[Diagnostic], out: &mut Vec<Diagnostic>) {
    let seeds = contradiction_seeds(prior);
    if seeds.is_empty() {
        return;
    }
    let cont = propagate(graph, &seeds);
    let Some(radius) = cont.max_radius() else {
        return;
    };
    if radius < OL303_RADIUS_THRESHOLD {
        return;
    }
    out.push(Diagnostic {
        rule: "OL303",
        severity: Severity::Warning,
        axioms: cont.seeds.clone(),
        subject: None,
        message: format!(
            "contradiction contamination spreads {radius} dependency hops from its \
             seeds (threshold {OL303_RADIUS_THRESHOLD}): {} of {} axioms are \
             signature-reachable from a contested fact",
            cont.contaminated.len(),
            graph.len(),
        ),
        suggestion: Some(
            "resolve the seed contradictions or decouple the regions (split shared \
             names) to shrink the exposed surface; `shoin4 modules` prints the \
             partition"
                .to_string(),
        ),
        claim: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::modules::ModuleExtractor;
    use shoin4::parse_kb4;

    fn graph(src: &str) -> DepGraph {
        DepGraph::build(&parse_kb4(src).unwrap())
    }

    #[test]
    fn propagation_counts_hops_and_partitions() {
        // 0: x:A, 1: x:not A (seeds) — 2: A⊑B touches A⁺ (hop 1) —
        // 3: B⊑C (hop 2) — 4/5: a separate island (clean).
        let g = graph(
            "x : A
             x : not A
             A SubClassOf B
             B SubClassOf C
             D SubClassOf E
             y : D",
        );
        let c = propagate(&g, &[0, 1]);
        assert_eq!(c.distance[2], Some(1));
        assert_eq!(c.distance[3], Some(2));
        assert_eq!(c.distance[4], None);
        assert_eq!(c.clean, vec![4, 5]);
        assert_eq!(c.max_radius(), Some(2));
        // Per-name radii: B's positive half is first touched at hop 1.
        assert_eq!(
            c.name_radius[&SigAtom::ConceptPos(dl::ConceptName::new("B"))],
            1
        );
        assert!(!c
            .name_radius
            .contains_key(&SigAtom::ConceptPos(dl::ConceptName::new("D"))));
    }

    #[test]
    fn ol303_fires_only_past_the_threshold() {
        let far = parse_kb4(
            "x : A
             x : not A
             A SubClassOf B
             B SubClassOf C
             C SubClassOf D",
        )
        .unwrap();
        let near = parse_kb4(
            "x : A
             x : not A
             A SubClassOf B",
        )
        .unwrap();
        for (kb, expect) in [(far, true), (near, false)] {
            let diags = crate::lint_kb4(&kb);
            assert_eq!(diags.iter().any(|d| d.rule == "OL303"), expect, "{diags:?}");
            // Never an Error: OL303 carries no oracle-checked claim.
            assert!(diags
                .iter()
                .filter(|d| d.rule == "OL303")
                .all(|d| d.severity == Severity::Warning && d.claim.is_none()));
        }
    }

    #[test]
    fn clean_region_matches_module_intuition() {
        // The clean region is closed under module extraction from its
        // own names: no clean-seeded module touches a contaminated
        // axiom. (The full differential version lives in
        // tests/module_parity.rs.)
        let kb = parse_kb4(
            "x : A
             x : not A
             A SubClassOf B
             D SubClassOf E
             y : D",
        )
        .unwrap();
        let g = DepGraph::build(&kb);
        let c = propagate(&g, &[0, 1]);
        assert_eq!(c.clean, vec![3, 4]);
        let ex = ModuleExtractor::new(&kb);
        let m = ex.extract(&shoin4::dataflow::concept_seed(&dl::Concept::atomic("E")));
        assert!(m.axioms.iter().all(|i| c.clean.contains(i)));
    }

    #[test]
    fn no_seeds_no_rule() {
        let kb = parse_kb4("A SubClassOf B\nx : A").unwrap();
        let diags = crate::lint_kb4(&kb);
        assert!(diags.iter().all(|d| d.rule != "OL303"));
    }
}
