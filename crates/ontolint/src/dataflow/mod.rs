//! Signature dataflow analysis: the whole-KB static pass behind
//! module-scoped query execution and the OL30x lint family.
//!
//! Three layers, one per submodule:
//!
//! * [`signature`] — polarity-aware signature atoms and the axiom
//!   dependency graph (two axioms are adjacent iff they share an atom
//!   of the *split* signature, so internal/material/strong inclusions
//!   couple names exactly as §3.1's projections dictate);
//! * [`modules`] — syntactic module extraction (`⊤`-locality fixpoint)
//!   and the rules OL301 (dead axiom), OL302 (disconnected group) and
//!   OL304 (module ≫ told-cone anomaly);
//! * [`contamination`] — contested-signature propagation from OL00x
//!   seeds, the clean/contaminated partition, and OL303 (contamination
//!   radius above threshold).
//!
//! The OL30x rules are advisory (`Info`/`Warning`): the *semantic*
//! guarantee — extracted modules preserve every four-valued verdict —
//! is enforced where it matters, in the reasoner's
//! `Config::module_scoping` path, and machine-checked differentially in
//! `tests/module_parity.rs` against the unscoped engine and the
//! `fourmodels` enumeration oracle.

pub mod contamination;
pub mod modules;
pub mod signature;

pub use contamination::{contradiction_seeds, propagate, Contamination};
pub use modules::{Module, ModuleExtractor};
pub use signature::{DepGraph, SigAtom};

use crate::diagnostics::Diagnostic;
use shoin4::KnowledgeBase4;

/// Run every dataflow rule. `prior` must already contain the
/// contradiction-family findings (OL00x) — their `Error` diagnostics
/// seed the contamination propagation.
pub fn run(kb: &KnowledgeBase4, prior: &[Diagnostic], out: &mut Vec<Diagnostic>) {
    let extractor = ModuleExtractor::new(kb);
    modules::check_dead_axioms(kb, &extractor, out);
    modules::check_disconnected(&extractor, out);
    contamination::check_radius(extractor.graph(), prior, out);
    modules::check_module_blowup(kb, &extractor, out);
}
