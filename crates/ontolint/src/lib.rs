//! `ontolint` — static analysis over SHOIN(D)4 knowledge bases.
//!
//! The linter inspects a parsed [`KnowledgeBase4`] *without invoking the
//! tableau* and produces structured [`Diagnostic`]s in three families:
//!
//! * **Contradiction detection** (`OL001`–`OL007`): contested facts and
//!   unsatisfiable constellations that follow syntactically — directly
//!   asserted complements, told-subsumption chains, equality/nominal
//!   conflicts, cardinality tension.
//! * **Hygiene** (`OL101`–`OL105`): orphaned names, cyclic subsumption,
//!   tautological axioms, duplicates, shadowed inclusions.
//! * **Reduction cost** (`OL201`–`OL202`): the exact per-axiom and
//!   KB-level growth under the Definitions 5–7 classical reduction.
//! * **Signature dataflow** (`OL301`–`OL304`): dead axioms, disconnected
//!   axiom groups, contradiction-contamination radii, and module-blowup
//!   anomalies, all derived from the [`dataflow`] analysis that also
//!   powers the reasoner's module-scoped query execution.
//! * **Static hardness** (`OL401`–`OL404`): per-module search-cost
//!   prediction from the [`hardness`] stratifier (Horn core vs
//!   disjunctive residue vs ∃-expansion skeleton) — hard modules,
//!   residue-dominated modules, unbounded-∃ blocking risk, and the KB
//!   hardness summary. The same scores drive the serving layer's
//!   cost-aware admission lanes.
//!
//! The severity contract: every [`Severity::Error`] finding carries a
//! [`Claim`] that an exact procedure (the `fourmodels` enumeration oracle
//! or the tableau via Theorem 6) confirms — the linter promises **zero
//! false positives at `Error`**. `Warning`s flag constellations the
//! four-valued semantics may excuse (material chains, `R⁺`/`R⁼`
//! cardinality tension); `Info`s never indicate a defect.
//!
//! Because all rules are syntactic, linting is fast: closure over the
//! told-subsumption graph and one linear transformation pass, no search.
//!
//! ```
//! let kb = shoin4::parse_kb4("x : A\nx : not A").unwrap();
//! let diags = ontolint::lint_kb4(&kb);
//! assert_eq!(diags[0].rule, "OL001");
//! assert_eq!(diags[0].severity, ontolint::Severity::Error);
//! ```

pub mod contradictions;
pub mod cost;
pub mod dataflow;
pub mod diagnostics;
pub mod graph;
pub mod hardness;
pub mod hygiene;

pub use diagnostics::{diagnostics_to_json, Claim, Diagnostic, Severity};

use dl::KnowledgeBase;
use shoin4::{InclusionKind, KnowledgeBase4};

/// Lint a four-valued KB: run every rule, most severe findings first.
pub fn lint_kb4(kb: &KnowledgeBase4) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    contradictions::run(kb, &mut out);
    // The dataflow rules read the contradiction findings (OL00x Error
    // axioms seed the contamination propagation), so they run second on
    // a snapshot of the list.
    let contradiction_diags = out.clone();
    dataflow::run(kb, &contradiction_diags, &mut out);
    hygiene::run(kb, &mut out);
    cost::run(kb, &mut out);
    hardness::run(kb, &mut out);
    out.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.cmp(b.rule))
            .then_with(|| a.axioms.cmp(&b.axioms))
    });
    out
}

/// Lint a classical KB through its standard four-valued embedding
/// (`⊑` read as internal inclusion, the paper's Example 2).
pub fn lint_kb(kb: &KnowledgeBase) -> Vec<Diagnostic> {
    lint_kb4(&KnowledgeBase4::from_classical(kb, InclusionKind::Internal))
}

/// The syntactically-certain contested atomic facts, for pre-seeding
/// `shoin4::analysis::contradiction_report_seeded` — every pair here is
/// `⊤` in every model, so the survey can skip the two tableau queries.
pub fn certain_contested_facts(diags: &[Diagnostic]) -> Vec<(dl::IndividualName, dl::ConceptName)> {
    let mut out = Vec::new();
    for d in diags {
        if d.severity != Severity::Error {
            continue;
        }
        if let Some(Claim::ContestedConcept {
            individual,
            concept: dl::Concept::Atomic(name),
        }) = &d.claim
        {
            out.push((individual.clone(), name.clone()));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoin4::parse_kb4;

    #[test]
    fn findings_sort_most_severe_first() {
        let kb = parse_kb4(
            "A SubClassOf B
             A SubClassOf B
             x : A
             x : not A",
        )
        .unwrap();
        let diags = lint_kb4(&kb);
        let severities: Vec<Severity> = diags.iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted);
        assert_eq!(diags[0].rule, "OL001");
    }

    #[test]
    fn classical_kbs_lint_through_the_embedding() {
        let kb = dl::parser::parse_kb("A SubClassOf A\nx : A\nx : not A").unwrap();
        let diags = lint_kb(&kb);
        assert!(diags.iter().any(|d| d.rule == "OL001"));
        assert!(diags.iter().any(|d| d.rule == "OL103"));
    }

    #[test]
    fn certain_contested_facts_extracts_atomic_error_claims() {
        let kb = parse_kb4(
            "Penguin SubClassOf Bird
             x : Penguin
             x : not Bird
             x : A
             x : not A",
        )
        .unwrap();
        let facts = certain_contested_facts(&lint_kb4(&kb));
        assert!(facts.contains(&(dl::IndividualName::new("x"), dl::ConceptName::new("A"))));
        assert!(facts.contains(&(dl::IndividualName::new("x"), dl::ConceptName::new("Bird"))));
    }

    #[test]
    fn empty_kb_yields_no_findings() {
        assert!(lint_kb4(&KnowledgeBase4::new()).is_empty());
    }

    #[test]
    fn json_report_is_parseable() {
        let kb = parse_kb4("x : A\nx : not A").unwrap();
        let diags = lint_kb4(&kb);
        let json = diagnostics_to_json(&diags).to_string();
        let back = jsonio::Value::parse(&json).unwrap();
        let arr = back.as_array().unwrap();
        assert_eq!(arr.len(), diags.len());
        assert_eq!(arr[0].get("rule").unwrap().as_str(), Some("OL001"));
        assert_eq!(
            arr[0].get("claim").unwrap().get("kind").unwrap().as_str(),
            Some("contested-concept")
        );
    }
}
