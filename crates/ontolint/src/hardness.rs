//! Family E: static hardness (`OL401`–`OL404`).
//!
//! Driven by the [`shoin4::hardness`] analyzer (re-exported here, so
//! `ontolint::hardness::analyze_kb` is the same function the serving
//! layer's cost-aware admission uses): each signature-dataflow module
//! is stratified into its Horn core, disjunctive residue, and
//! ∃-expansion skeleton, and the lints report the modules whose
//! predicted search cost deserves attention *before* any query runs.
//!
//! * `OL401` — a module whose predicted score reaches the serving
//!   layer's default heavy threshold;
//! * `OL402` — a residue-dominated module: most of its classical images
//!   are rejected by the Horn classifier, so a handful of axioms
//!   forfeits the saturation fast path for the whole module;
//! * `OL403` — a cyclic ∃-expansion skeleton: expansion depth is
//!   unbounded and tableau termination rests on blocking;
//! * `OL404` — the KB-level hardness summary.
//!
//! Like every other family, these rules run no search — the analysis is
//! a pure function of the classical images.

use crate::diagnostics::{Diagnostic, Severity};
use shoin4::KnowledgeBase4;

pub use shoin4::hardness::*;

/// `OL402` needs a module with at least this many classical images —
/// a two-image module is "dominated" by any single rejection, which is
/// not an actionable signal.
const RESIDUE_MIN_IMAGES: usize = 4;
/// …and at least this fraction of them rejected.
const RESIDUE_FRACTION: f64 = 0.5;

/// Run all four hardness rules.
pub fn run(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let analysis = analyze_kb(kb);
    for m in &analysis.modules {
        let cost = &m.report.cost;
        if m.report.score >= DEFAULT_HEAVY_THRESHOLD {
            out.push(Diagnostic {
                rule: "OL401",
                severity: Severity::Warning,
                axioms: m.axioms.clone(),
                subject: None,
                message: format!(
                    "hard module: predicted score {:.1} (heavy threshold \
                     {DEFAULT_HEAVY_THRESHOLD}) from {} branch points, {} residue \
                     images, ∃-depth {}",
                    m.report.score,
                    cost.branch_points,
                    cost.residue,
                    match cost.exists_depth {
                        Some(d) => d.to_string(),
                        None => "unbounded".to_string(),
                    },
                ),
                suggestion: Some(
                    "queries scoped to this module run the full tableau; consider \
                     serving this KB with cost-aware lanes (`serve --lanes`)"
                        .to_string(),
                ),
                claim: None,
            });
        }
        if !m.residue_axioms.is_empty()
            && cost.images >= RESIDUE_MIN_IMAGES
            && cost.residue_fraction() >= RESIDUE_FRACTION
        {
            out.push(Diagnostic {
                rule: "OL402",
                severity: Severity::Warning,
                axioms: m.residue_axioms.clone(),
                subject: None,
                message: format!(
                    "residue-dominated module: {}/{} classical images are rejected \
                     by the Horn classifier, so these axioms forfeit the saturation \
                     fast path for all {} axioms of their module",
                    cost.residue,
                    cost.images,
                    m.axioms.len(),
                ),
                suggestion: Some(
                    "rewriting or retracting the listed axioms hands the module \
                     back to the Horn path"
                        .to_string(),
                ),
                claim: None,
            });
        }
        if cost.exists_depth.is_none() {
            out.push(Diagnostic {
                rule: "OL403",
                severity: Severity::Warning,
                axioms: m.axioms.clone(),
                subject: None,
                message: "the module's ∃-expansion skeleton is cyclic: expansion \
                          depth is unbounded and tableau termination rests on \
                          blocking, the most expensive search regime"
                    .to_string(),
                suggestion: Some(
                    "check whether the recursive existential really needs to \
                     reach its own concept again"
                        .to_string(),
                ),
                claim: None,
            });
        }
    }
    if !analysis.modules.is_empty() {
        out.push(Diagnostic {
            rule: "OL404",
            severity: Severity::Info,
            axioms: Vec::new(),
            subject: None,
            message: format!(
                "hardness summary: {} modules, {} heavy (score ≥ \
                 {DEFAULT_HEAVY_THRESHOLD}), max score {:.1}",
                analysis.modules.len(),
                analysis.heavy_modules(DEFAULT_HEAVY_THRESHOLD),
                analysis.max_score(),
            ),
            suggestion: None,
            claim: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let kb = shoin4::parse_kb4(src).unwrap();
        let mut out = Vec::new();
        run(&kb, &mut out);
        out
    }

    #[test]
    fn ol401_flags_hard_modules_and_spares_horn_chains() {
        let diags = lint("A SubClassOf B or C\nx : A");
        assert!(diags.iter().any(|d| d.rule == "OL401"), "{diags:?}");
        let diags = lint("A SubClassOf B\nB SubClassOf C\nx : A");
        assert!(diags.iter().all(|d| d.rule != "OL401"), "{diags:?}");
    }

    #[test]
    fn ol402_names_the_residue_axioms() {
        // Three disjunctive inclusions (all residue) plus one Horn
        // assertion, chained through shared names so they form one
        // module — 3/4 images rejected.
        let diags = lint(
            "A SubClassOf B or C
             B SubClassOf C or D
             C SubClassOf D or E
             x : A",
        );
        let ol402: Vec<_> = diags.iter().filter(|d| d.rule == "OL402").collect();
        assert_eq!(ol402.len(), 1, "{diags:?}");
        assert_eq!(ol402[0].axioms, vec![0, 1, 2], "only the material axioms");
    }

    #[test]
    fn ol403_flags_existential_cycles() {
        let diags = lint("A SubClassOf r some A\nx : A");
        assert!(diags.iter().any(|d| d.rule == "OL403"), "{diags:?}");
        let diags = lint("A SubClassOf r some B\nx : A");
        assert!(diags.iter().all(|d| d.rule != "OL403"), "{diags:?}");
    }

    #[test]
    fn ol404_summarizes_nonempty_kbs() {
        let diags = lint("A SubClassOf B\nP SubClassOf Q or R\nz : P");
        let summary: Vec<_> = diags.iter().filter(|d| d.rule == "OL404").collect();
        assert_eq!(summary.len(), 1);
        assert!(summary[0].message.contains("hardness summary"));
        assert!(lint("").is_empty());
    }

    #[test]
    fn analyzer_is_reexported() {
        // `ontolint::hardness::analyze_kb` must be the same analyzer the
        // serving layer consults.
        let kb = shoin4::parse_kb4("A SubClassOf B or C\nx : A").unwrap();
        let analysis = analyze_kb(&kb);
        assert!(analysis.max_score() >= DEFAULT_HEAVY_THRESHOLD);
    }
}
