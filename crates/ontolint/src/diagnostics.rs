//! The diagnostic model shared by every lint rule.

use dl::name::{IndividualName, RoleName};
use dl::Concept;
use jsonio::Value;
use std::fmt;

/// How certain / severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: costs, statistics, style.
    Info,
    /// Likely a problem, but the semantics may excuse it.
    Warning,
    /// Syntactically certain: every model of the KB exhibits the issue.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The machine-checkable semantic consequence behind an `Error` finding.
///
/// Every `Error` diagnostic carries a claim so an exact procedure (the
/// `fourmodels` enumeration oracle or the tableau via Theorem 6) can
/// confirm it — the linter's "zero false positives at `Error`" contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claim {
    /// `a : C` has both positive and negative information in every model
    /// (the four-valued answer is `⊤`).
    ContestedConcept {
        /// The contested individual.
        individual: IndividualName,
        /// The contested concept.
        concept: Concept,
    },
    /// `R(a, b)` has both positive and negative information in every model.
    ContestedRole {
        /// The contested role.
        role: RoleName,
        /// The source individual.
        a: IndividualName,
        /// The target individual.
        b: IndividualName,
    },
    /// The KB has no four-valued model at all (classical-strength
    /// constructs: nominals, `⊥`, distinctness).
    Unsatisfiable,
}

impl Claim {
    /// JSON form, for `--format json` output.
    pub fn to_json(&self) -> Value {
        match self {
            Claim::ContestedConcept {
                individual,
                concept,
            } => Value::object([
                ("kind", "contested-concept".into()),
                ("individual", individual.as_str().into()),
                ("concept", concept.to_string().into()),
            ]),
            Claim::ContestedRole { role, a, b } => Value::object([
                ("kind", "contested-role".into()),
                ("role", role.as_str().into()),
                ("a", a.as_str().into()),
                ("b", b.as_str().into()),
            ]),
            Claim::Unsatisfiable => Value::object([("kind", "unsatisfiable".into())]),
        }
    }
}

/// One finding produced by a lint rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `OL001`.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Indices into `kb.axioms()` that participate in the finding.
    pub axioms: Vec<usize>,
    /// The main subject (an individual, concept, or role name), if any.
    pub subject: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// A suggested fix, when one is mechanical.
    pub suggestion: Option<String>,
    /// For `Error` findings: the verifiable consequence claimed.
    pub claim: Option<Claim>,
}

impl Diagnostic {
    /// JSON form, for `--format json` output.
    pub fn to_json(&self) -> Value {
        let axioms: Vec<Value> = self.axioms.iter().map(|i| (*i).into()).collect();
        let opt = |s: &Option<String>| match s {
            Some(s) => Value::from(s.clone()),
            None => Value::Null,
        };
        Value::object([
            ("rule", self.rule.into()),
            ("severity", self.severity.to_string().into()),
            ("axioms", Value::Array(axioms)),
            ("subject", opt(&self.subject)),
            ("message", self.message.clone().into()),
            ("suggestion", opt(&self.suggestion)),
            (
                "claim",
                match &self.claim {
                    Some(c) => c.to_json(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// A whole lint report as a JSON array.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> Value {
    Value::Array(diags.iter().map(Diagnostic::to_json).collect())
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.rule, self.message)?;
        if !self.axioms.is_empty() {
            let ids: Vec<String> = self.axioms.iter().map(|i| i.to_string()).collect();
            write!(f, " (axioms {})", ids.join(", "))?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, " — suggestion: {s}")?;
        }
        Ok(())
    }
}
