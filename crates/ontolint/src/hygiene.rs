//! Family B: hygiene rules (`OL101`–`OL105`) — findings that never make
//! the KB wrong, only worse: orphaned names, cycles, vacuous axioms,
//! duplicates, shadowed inclusions.

use crate::diagnostics::{Diagnostic, Severity};
use crate::graph::{told_cycles, ToldGraph};
use shoin4::{Axiom4, InclusionKind, KnowledgeBase4};
use std::collections::BTreeMap;

/// Run every hygiene rule.
pub fn run(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    singleton_names(kb, out);
    cyclic_subsumption(kb, out);
    vacuous_axioms(kb, out);
    duplicate_axioms(kb, out);
    shadowed_inclusions(kb, out);
}

/// `OL101` — a concept or role name mentioned in exactly one axiom.
///
/// Such a name contributes nothing connectable: it is either a typo for a
/// name used elsewhere or dead vocabulary.
fn singleton_names(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let mut concept_axioms: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut role_axioms: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, ax) in kb.axioms().iter().enumerate() {
        let sig = KnowledgeBase4::from_axioms([ax.clone()]).signature();
        for c in sig.concepts {
            concept_axioms.entry(c.to_string()).or_default().push(i);
        }
        for r in sig.roles {
            role_axioms.entry(r.to_string()).or_default().push(i);
        }
    }
    let mut report = |name: &str, kind: &str, axioms: &[usize]| {
        out.push(Diagnostic {
            rule: "OL101",
            severity: Severity::Info,
            axioms: axioms.to_vec(),
            subject: Some(name.to_string()),
            message: format!(
                "{kind} name `{name}` appears in only one axiom — dead \
                 vocabulary or a typo for a name used elsewhere"
            ),
            suggestion: Some(
                "connect the name to the rest of the ontology, fix the \
                 spelling, or remove the axiom"
                    .to_string(),
            ),
            claim: None,
        });
    };
    for (name, axioms) in &concept_axioms {
        if axioms.len() == 1 {
            report(name, "concept", axioms);
        }
    }
    for (name, axioms) in &role_axioms {
        if axioms.len() == 1 {
            report(name, "role", axioms);
        }
    }
}

/// `OL102` — a cycle in the told subsumption graph (`A ⊏ B ⊏ … ⊏ A`).
///
/// Legal (it encodes equivalence) but usually accidental, and it costs
/// the tableau extra work on every query touching the cycle.
fn cyclic_subsumption(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let graph = ToldGraph::build(kb);
    for component in told_cycles(&graph) {
        let mut axioms: Vec<usize> = Vec::new();
        for name in &component {
            for e in graph.pos_edges.get(name).into_iter().flatten() {
                if component.contains(&e.to) {
                    axioms.push(e.axiom);
                }
            }
        }
        axioms.sort_unstable();
        axioms.dedup();
        let names: Vec<String> = component.iter().map(ToString::to_string).collect();
        out.push(Diagnostic {
            rule: "OL102",
            severity: Severity::Warning,
            axioms,
            subject: Some(names.join(", ")),
            message: format!(
                "cyclic told subsumption between {{{}}} — the concepts are \
                 mutually included, i.e. equivalent",
                names.join(", ")
            ),
            suggestion: Some(
                "if the equivalence is intended, keep one name and alias \
                 the others; otherwise break the cycle"
                    .to_string(),
            ),
            claim: None,
        });
    }
}

/// `OL103` — an axiom that holds in every interpretation and so carries
/// no information: `C ⊑ ⊤`, `⊥ ⊑ D`, or `C ⊏/→ C`.
///
/// `C ↦ C` is deliberately *not* flagged: the material reading
/// `∀x. x ∈ proj⁻(C) ∪ proj⁺(C)` fails exactly when some element has no
/// information about `C`, so it genuinely excludes gaps.
fn vacuous_axioms(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    for (i, ax) in kb.axioms().iter().enumerate() {
        let (reason, subject) = match ax {
            Axiom4::ConceptInclusion(_, _, dl::Concept::Top) => (
                "the right-hand side is ⊤, which everything is included in",
                None,
            ),
            Axiom4::ConceptInclusion(_, dl::Concept::Bottom, _) => (
                "the left-hand side is ⊥, which is included in everything",
                None,
            ),
            Axiom4::ConceptInclusion(kind, c, d) if c == d && *kind != InclusionKind::Material => {
                ("both sides are the same concept", Some(c.to_string()))
            }
            Axiom4::RoleInclusion(kind, r, s) if r == s && *kind != InclusionKind::Material => {
                ("both sides are the same role", Some(r.to_string()))
            }
            Axiom4::DataRoleInclusion(kind, u, v) if u == v && *kind != InclusionKind::Material => {
                ("both sides are the same data role", Some(u.to_string()))
            }
            _ => continue,
        };
        out.push(Diagnostic {
            rule: "OL103",
            severity: Severity::Info,
            axioms: vec![i],
            subject,
            message: format!("axiom `{ax}` is tautological — {reason}"),
            suggestion: Some("remove the axiom".to_string()),
            claim: None,
        });
    }
}

/// `OL104` — byte-identical duplicate axioms.
fn duplicate_axioms(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let mut groups: BTreeMap<&Axiom4, Vec<usize>> = BTreeMap::new();
    for (i, ax) in kb.axioms().iter().enumerate() {
        groups.entry(ax).or_default().push(i);
    }
    for (ax, axioms) in groups {
        if axioms.len() > 1 {
            out.push(Diagnostic {
                rule: "OL104",
                severity: Severity::Warning,
                axioms,
                subject: None,
                message: format!("axiom `{ax}` is stated more than once"),
                suggestion: Some("keep one copy".to_string()),
                claim: None,
            });
        }
    }
}

/// `OL105` — an inclusion made redundant by a strictly more exact one
/// over the same sides (`C ⊏ D` alongside `C → D`; strong implies
/// internal, `InclusionKind::at_least_as_exact_as`).
fn shadowed_inclusions(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    // Key: the axiom with its kind erased; value: (kind, index) pairs.
    let mut groups: BTreeMap<String, Vec<(InclusionKind, usize)>> = BTreeMap::new();
    for (i, ax) in kb.axioms().iter().enumerate() {
        let (kind, key) = match ax {
            Axiom4::ConceptInclusion(k, c, d) => (*k, format!("C\u{0}{c}\u{0}{d}")),
            Axiom4::RoleInclusion(k, r, s) => (*k, format!("R\u{0}{r}\u{0}{s}")),
            Axiom4::DataRoleInclusion(k, u, v) => (*k, format!("U\u{0}{u}\u{0}{v}")),
            _ => continue,
        };
        groups.entry(key).or_default().push((kind, i));
    }
    for entries in groups.values() {
        for &(kind, i) in entries {
            let shadowed_by: Vec<usize> = entries
                .iter()
                .filter(|(k2, j)| *j != i && *k2 != kind && k2.at_least_as_exact_as(kind))
                .map(|(_, j)| *j)
                .collect();
            if let Some(&j) = shadowed_by.first() {
                let stronger = &kb.axioms()[j];
                out.push(Diagnostic {
                    rule: "OL105",
                    severity: Severity::Info,
                    axioms: vec![i, j],
                    subject: None,
                    message: format!(
                        "axiom `{}` is implied by the more exact `{stronger}`",
                        kb.axioms()[i]
                    ),
                    suggestion: Some("keep only the stronger inclusion".to_string()),
                    claim: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let kb = shoin4::parse_kb4(src).unwrap();
        let mut out = Vec::new();
        run(&kb, &mut out);
        out
    }

    fn by_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
        diags.iter().filter(|d| d.rule == rule).collect()
    }

    #[test]
    fn ol101_flags_singleton_names() {
        let diags = lint("A SubClassOf B\nx : A\nOrphan SubClassOf A");
        let found = by_rule(&diags, "OL101");
        assert_eq!(found.len(), 2); // B and Orphan each appear once.
        let subjects: Vec<_> = found.iter().map(|d| d.subject.clone().unwrap()).collect();
        assert!(subjects.contains(&"B".to_string()));
        assert!(subjects.contains(&"Orphan".to_string()));
    }

    #[test]
    fn ol101_counts_roles_too() {
        let diags = lint("r(a, b)\nr(b, c)\ns(a, b)");
        let found = by_rule(&diags, "OL101");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].subject.as_deref(), Some("s"));
    }

    #[test]
    fn ol102_reports_the_cycle_once() {
        let diags = lint("A SubClassOf B\nB SubClassOf A\nC SubClassOf A");
        let found = by_rule(&diags, "OL102");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].axioms, [0, 1]);
    }

    #[test]
    fn ol103_tautologies() {
        let diags = lint(
            "A SubClassOf Thing
             Nothing SubClassOf B
             A SubClassOf A
             r SubRoleOf r",
        );
        assert_eq!(by_rule(&diags, "OL103").len(), 4);
        // Material self-inclusion excludes gaps — not vacuous.
        assert!(by_rule(&lint("A MaterialSubClassOf A"), "OL103").is_empty());
    }

    #[test]
    fn ol104_duplicates() {
        let diags = lint("A SubClassOf B\nx : A\nA SubClassOf B");
        let found = by_rule(&diags, "OL104");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].axioms, [0, 2]);
    }

    #[test]
    fn ol105_strong_shadows_internal() {
        let diags = lint("A SubClassOf B\nA StrongSubClassOf B");
        let found = by_rule(&diags, "OL105");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].axioms, [0, 1]);
        // Material is incomparable: nothing shadowed.
        assert!(by_rule(
            &lint("A MaterialSubClassOf B\nA StrongSubClassOf B"),
            "OL105"
        )
        .is_empty());
    }
}
