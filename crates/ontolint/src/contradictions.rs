//! Family A: likely-contradiction detection (rules `OL001`–`OL007`).
//!
//! Everything at `Severity::Error` here is *syntactically certain*: the
//! finding is a sound consequence of the axioms under the four-valued
//! semantics, machine-checkable through the [`crate::Claim`] it carries.
//! Defeasible findings (material chains, `R⁺`-vs-`R⁼` cardinality
//! tension) stay at `Warning`.

use crate::diagnostics::{Claim, Diagnostic, Severity};
use crate::graph::{close_memberships, ToldGraph, UnionFind};
use dl::name::{ConceptName, IndividualName};
use dl::nnf::nnf;
use dl::Concept;
use shoin4::{Axiom4, KnowledgeBase4};
use std::collections::{BTreeMap, BTreeSet};

/// Run every contradiction rule.
pub fn run(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    contested_concept_assertions(kb, out);
    contested_role_assertions(kb, out);
    let told = told_findings(kb);
    contested_via_told_closure(kb, &told, out);
    equality_conflicts(kb, out);
    cardinality_tension(kb, out);
    nominal_conflicts(kb, out);
    material_chain_tension(kb, &told, out);
}

/// `OL001` — an individual is asserted both a concept and its negation.
fn contested_concept_assertions(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let mut by_individual: BTreeMap<&IndividualName, Vec<(usize, &Concept)>> = BTreeMap::new();
    for (i, ax) in kb.axioms().iter().enumerate() {
        if let Axiom4::ConceptAssertion(a, c) = ax {
            by_individual.entry(a).or_default().push((i, c));
        }
    }
    for (a, assertions) in by_individual {
        for (k, (i, c)) in assertions.iter().enumerate() {
            for (j, d) in &assertions[k + 1..] {
                if nnf(c) == nnf(&(*d).clone().not()) {
                    // `a : C` is contested iff `a : ¬C` is (the two claims
                    // swap the projections), so claim the non-negated side.
                    let claimed = if matches!(c, Concept::Not(_)) { d } else { c };
                    out.push(Diagnostic {
                        rule: "OL001",
                        severity: Severity::Error,
                        axioms: vec![*i, *j],
                        subject: Some(a.to_string()),
                        message: format!(
                            "`{a}` is asserted both `{c}` and its negation — \
                             the fact is contested (⊤) in every model"
                        ),
                        suggestion: Some(
                            "drop one assertion, or keep both deliberately and \
                             query under the four-valued semantics"
                                .to_string(),
                        ),
                        claim: Some(Claim::ContestedConcept {
                            individual: (*a).clone(),
                            concept: (*claimed).clone(),
                        }),
                    });
                }
            }
        }
    }
}

/// `OL002` — a role assertion and its negation both present.
fn contested_role_assertions(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let mut pos = BTreeMap::new();
    let mut neg = BTreeMap::new();
    for (i, ax) in kb.axioms().iter().enumerate() {
        match ax {
            Axiom4::RoleAssertion(r, a, b) => {
                pos.entry((r, a, b)).or_insert(i);
            }
            Axiom4::NegativeRoleAssertion(r, a, b) => {
                neg.entry((r, a, b)).or_insert(i);
            }
            _ => {}
        }
    }
    for (key @ (r, a, b), i) in &pos {
        if let Some(j) = neg.get(key) {
            out.push(Diagnostic {
                rule: "OL002",
                severity: Severity::Error,
                axioms: vec![*i, *j],
                subject: Some(r.to_string()),
                message: format!(
                    "`{r}({a}, {b})` is both asserted and denied — \
                     contested (⊤) in every model"
                ),
                suggestion: Some("drop one of the two assertions".to_string()),
                claim: Some(Claim::ContestedRole {
                    role: (*r).clone(),
                    a: (*a).clone(),
                    b: (*b).clone(),
                }),
            });
        }
    }
}

/// Per-individual told-closure results, shared by `OL003` and `OL007`.
struct ToldFindings {
    /// `(individual, concept, pos-provenance, neg-provenance, via_material)`,
    /// with directly-asserted pairs (both sides seeds) excluded — those are
    /// `OL001`'s to report.
    contested: Vec<(IndividualName, ConceptName, Vec<usize>, bool)>,
}

fn told_findings(kb: &KnowledgeBase4) -> ToldFindings {
    let graph = ToldGraph::build(kb);
    let mut pos_seeds: BTreeMap<IndividualName, Vec<(ConceptName, usize)>> = BTreeMap::new();
    let mut neg_seeds: BTreeMap<IndividualName, Vec<(ConceptName, usize)>> = BTreeMap::new();
    for (i, ax) in kb.axioms().iter().enumerate() {
        if let Axiom4::ConceptAssertion(a, c) = ax {
            match c {
                Concept::Atomic(name) => pos_seeds
                    .entry(a.clone())
                    .or_default()
                    .push((name.clone(), i)),
                Concept::Not(inner) => {
                    if let Concept::Atomic(name) = &**inner {
                        neg_seeds
                            .entry(a.clone())
                            .or_default()
                            .push((name.clone(), i));
                    }
                }
                _ => {}
            }
        }
    }
    let mut contested = Vec::new();
    let individuals: BTreeSet<IndividualName> =
        pos_seeds.keys().chain(neg_seeds.keys()).cloned().collect();
    for a in individuals {
        let ps = pos_seeds.get(&a).map(Vec::as_slice).unwrap_or(&[]);
        let ns = neg_seeds.get(&a).map(Vec::as_slice).unwrap_or(&[]);
        // One pass with material links allowed; soundness is recovered by
        // inspecting `via_material` on the derivations afterwards.
        let (pos, neg) = close_memberships(&graph, ps, ns, true);
        for (name, p) in &pos {
            let Some(n) = neg.get(name) else { continue };
            if p.direct && n.direct {
                continue; // OL001 reports the directly-asserted pairs.
            }
            let mut axioms: Vec<usize> = p.axioms.iter().chain(&n.axioms).copied().collect();
            axioms.sort_unstable();
            axioms.dedup();
            contested.push((
                a.clone(),
                name.clone(),
                axioms,
                p.via_material || n.via_material,
            ));
        }
    }
    ToldFindings { contested }
}

/// `OL003` — contradiction through a chain of internal/strong told
/// inclusions (e.g. `x : Penguin`, `Penguin ⊏ Bird`, `x : ¬Bird`).
fn contested_via_told_closure(
    _kb: &KnowledgeBase4,
    told: &ToldFindings,
    out: &mut Vec<Diagnostic>,
) {
    for (a, name, axioms, via_material) in &told.contested {
        if *via_material {
            continue; // OL007's territory: the chain is defeasible.
        }
        out.push(Diagnostic {
            rule: "OL003",
            severity: Severity::Error,
            axioms: axioms.clone(),
            subject: Some(a.to_string()),
            message: format!(
                "`{a} : {name}` is contested (⊤) through the told \
                 subsumption chain — positive and negative information \
                 both follow from exception-free inclusions"
            ),
            suggestion: Some(
                "weaken one inclusion in the chain to MaterialSubClassOf, \
                 or retract one of the assertions"
                    .to_string(),
            ),
            claim: Some(Claim::ContestedConcept {
                individual: a.clone(),
                concept: Concept::atomic(name.clone()),
            }),
        });
    }
}

/// `OL004` — `a = b` chains colliding with `a ≠ b` (or a literal `a ≠ a`).
fn equality_conflicts(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    let mut uf = UnionFind::default();
    for (i, ax) in kb.axioms().iter().enumerate() {
        if let Axiom4::SameIndividual(a, b) = ax {
            uf.union(a.as_str(), b.as_str(), i);
        }
    }
    for (i, ax) in kb.axioms().iter().enumerate() {
        let Axiom4::DifferentIndividuals(a, b) = ax else {
            continue;
        };
        if !uf.connected(a.as_str(), b.as_str()) {
            continue;
        }
        let mut axioms = uf.class_axioms(a.as_str());
        axioms.push(i);
        axioms.sort_unstable();
        axioms.dedup();
        let how = if a == b {
            "an individual is declared different from itself".to_string()
        } else {
            format!("`{a}` and `{b}` are equated by `=` chains yet declared different")
        };
        out.push(Diagnostic {
            rule: "OL004",
            severity: Severity::Error,
            axioms,
            subject: Some(a.to_string()),
            message: format!(
                "{how} — equality is classical even in SHOIN(D)4, so the \
                 KB has no model"
            ),
            suggestion: Some(
                "remove either the SameIndividual chain or the \
                 DifferentIndividuals declaration"
                    .to_string(),
            ),
            claim: Some(Claim::Unsatisfiable),
        });
    }
}

/// `OL005` — more told role successors than an `AtMost` bound admits.
///
/// Only a warning: the bound transforms over `R⁼` (complement of the
/// negative extension) while assertions populate `R⁺`, so the four-valued
/// semantics does not force a clash; and without unique names the
/// successors may coincide. It is still almost always unintended.
fn cardinality_tension(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    // (role, source) → told successors, both orientations, built once.
    let mut forward: BTreeMap<(&dl::RoleName, &IndividualName), Vec<(usize, &IndividualName)>> =
        BTreeMap::new();
    let mut backward: BTreeMap<(&dl::RoleName, &IndividualName), Vec<(usize, &IndividualName)>> =
        BTreeMap::new();
    for (j, ax) in kb.axioms().iter().enumerate() {
        if let Axiom4::RoleAssertion(r, x, y) = ax {
            forward.entry((r, x)).or_default().push((j, y));
            backward.entry((r, y)).or_default().push((j, x));
        }
    }
    for (i, ax) in kb.axioms().iter().enumerate() {
        let Axiom4::ConceptAssertion(a, c) = ax else {
            continue;
        };
        for_each_conjunct(c, &mut |part| {
            let Concept::AtMost(n, role) = part else {
                return;
            };
            let table = if role.is_inverse() {
                &backward
            } else {
                &forward
            };
            let mut successors: BTreeSet<&IndividualName> = BTreeSet::new();
            let mut axioms = vec![i];
            for (j, dst) in table.get(&(role.name(), a)).into_iter().flatten() {
                successors.insert(dst);
                axioms.push(*j);
            }
            if successors.len() as u32 > *n {
                out.push(Diagnostic {
                    rule: "OL005",
                    severity: Severity::Warning,
                    axioms: axioms.clone(),
                    subject: Some(a.to_string()),
                    message: format!(
                        "`{a}` is bounded to at most {n} `{role}`-successors \
                         but has {} asserted ones — only benign because the \
                         bound constrains R⁼ while assertions feed R⁺ (and \
                         names may corefer)",
                        successors.len()
                    ),
                    suggestion: Some(
                        "raise the bound, or retract surplus role assertions".to_string(),
                    ),
                    claim: None,
                });
            }
        });
    }
}

fn for_each_conjunct(c: &Concept, f: &mut impl FnMut(&Concept)) {
    if let Concept::And(l, r) = c {
        for_each_conjunct(l, f);
        for_each_conjunct(r, f);
    } else {
        f(c);
    }
}

/// `OL006` — classical-strength assertions with no model: `a : ⊥`,
/// `a : ¬{…a…}`, and nominal-forced equalities colliding with `≠`.
fn nominal_conflicts(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    // Equality conflicts already reachable by `=` chains alone belong to
    // OL004; here we only report those needing at least one nominal edge.
    let mut plain = UnionFind::default();
    let mut with_nominals = UnionFind::default();
    for (i, ax) in kb.axioms().iter().enumerate() {
        match ax {
            Axiom4::SameIndividual(a, b) => {
                plain.union(a.as_str(), b.as_str(), i);
                with_nominals.union(a.as_str(), b.as_str(), i);
            }
            Axiom4::ConceptAssertion(a, Concept::OneOf(os)) if os.len() == 1 => {
                let b = os.iter().next().unwrap();
                with_nominals.union(a.as_str(), b.as_str(), i);
            }
            _ => {}
        }
    }
    for (i, ax) in kb.axioms().iter().enumerate() {
        let Axiom4::ConceptAssertion(a, c) = ax else {
            if let Axiom4::DifferentIndividuals(x, y) = ax {
                if with_nominals.connected(x.as_str(), y.as_str())
                    && !plain.connected(x.as_str(), y.as_str())
                {
                    let mut axioms = with_nominals.class_axioms(x.as_str());
                    axioms.push(i);
                    axioms.sort_unstable();
                    axioms.dedup();
                    out.push(Diagnostic {
                        rule: "OL006",
                        severity: Severity::Error,
                        axioms,
                        subject: Some(x.to_string()),
                        message: format!(
                            "nominal assertions force `{x}` = `{y}`, yet they \
                             are declared different — nominals keep their \
                             classical bite in SHOIN(D)4, so the KB has no \
                             model"
                        ),
                        suggestion: Some(
                            "retract the nominal assertion or the \
                             DifferentIndividuals declaration"
                                .to_string(),
                        ),
                        claim: Some(Claim::Unsatisfiable),
                    });
                }
            }
            continue;
        };
        match c {
            Concept::Bottom => out.push(Diagnostic {
                rule: "OL006",
                severity: Severity::Error,
                axioms: vec![i],
                subject: Some(a.to_string()),
                message: format!(
                    "`{a} : Nothing` — ⊥ has an empty positive extension \
                     even four-valued, so the KB has no model"
                ),
                suggestion: Some("remove the assertion".to_string()),
                claim: Some(Claim::Unsatisfiable),
            }),
            Concept::Not(inner) => {
                if let Concept::OneOf(os) = &**inner {
                    if os.contains(a) {
                        out.push(Diagnostic {
                            rule: "OL006",
                            severity: Severity::Error,
                            axioms: vec![i],
                            subject: Some(a.to_string()),
                            message: format!(
                                "`{a} : {c}` excludes the individual from a \
                                 nominal containing itself — no model exists"
                            ),
                            suggestion: Some("remove the assertion".to_string()),
                            claim: Some(Claim::Unsatisfiable),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// `OL007` — a contradiction reachable only through at least one
/// *material* inclusion: defeasible, hence a warning. (`x : Penguin` with
/// `Penguin ⊏ Bird ↦ Fly` and `x : ¬Fly` is the paper's own example — the
/// material link is exactly what lets the penguin not fly.)
fn material_chain_tension(_kb: &KnowledgeBase4, told: &ToldFindings, out: &mut Vec<Diagnostic>) {
    for (a, name, axioms, via_material) in &told.contested {
        if !*via_material {
            continue;
        }
        out.push(Diagnostic {
            rule: "OL007",
            severity: Severity::Warning,
            axioms: axioms.clone(),
            subject: Some(a.to_string()),
            message: format!(
                "`{a} : {name}` would be contested if the material \
                 inclusions in the chain applied — they tolerate \
                 exceptions, so this may be intended (penguins don't fly)"
            ),
            suggestion: Some(
                "no action needed if the exception is deliberate; otherwise \
                 strengthen the inclusion to SubClassOf"
                    .to_string(),
            ),
            claim: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let kb = shoin4::parse_kb4(src).unwrap();
        let mut out = Vec::new();
        run(&kb, &mut out);
        out
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn ol001_direct_contradiction() {
        let diags = lint("x : A\nx : not A");
        assert_eq!(rules(&diags), ["OL001"]);
        assert_eq!(diags[0].axioms, [0, 1]);
        assert!(matches!(
            diags[0].claim,
            Some(Claim::ContestedConcept { .. })
        ));
    }

    #[test]
    fn ol001_matches_up_to_nnf() {
        // `not (A and B)` vs `A and B` — negation recognised structurally.
        let diags = lint("x : A and B\nx : not (A and B)");
        assert_eq!(rules(&diags), ["OL001"]);
        // De Morgan holds in FOUR (neg(A⊓B) = neg(A) ∪ neg(B)), so the
        // rewritten complement is the same contradiction.
        let diags = lint("x : A and B\nx : not A or not B");
        assert_eq!(rules(&diags), ["OL001"]);
        // Unrelated assertions stay clean.
        assert!(lint("x : A and B\nx : not A or B").is_empty());
    }

    #[test]
    fn ol002_role_contradiction() {
        let diags = lint("r(a, b)\nnot r(a, b)");
        assert_eq!(rules(&diags), ["OL002"]);
        assert!(lint("r(a, b)\nnot r(b, a)").is_empty());
    }

    #[test]
    fn ol003_chain_contradiction() {
        let diags = lint(
            "Penguin SubClassOf Bird
             x : Penguin
             x : not Bird",
        );
        assert_eq!(rules(&diags), ["OL003"]);
        assert_eq!(diags[0].axioms, [0, 1, 2]);
    }

    #[test]
    fn ol003_strong_contraposition() {
        // x ∈ pos(A); A → B strong and B → C strong; x : not C gives
        // x ∈ neg(C) ⟹ x ∈ neg(B) ⟹ x ∈ neg(A).
        let diags = lint(
            "A StrongSubClassOf B
             B StrongSubClassOf C
             x : A
             x : not C",
        );
        let ol003: Vec<_> = diags.iter().filter(|d| d.rule == "OL003").collect();
        // Contested at A, B and C.
        assert_eq!(ol003.len(), 3);
    }

    #[test]
    fn ol003_internal_forward_only() {
        // Internal inclusions do not contrapose: `x : not B` says nothing
        // about A, but the forward direction still contests B itself.
        let diags = lint("A SubClassOf B\nx : not B\nx : A");
        assert_eq!(rules(&diags), ["OL003"]);
        assert!(diags[0].message.contains("B"), "{}", diags[0].message);
        if let Some(Claim::ContestedConcept { concept, .. }) = &diags[0].claim {
            assert_eq!(*concept, Concept::atomic("B"));
        } else {
            panic!("expected a contested-concept claim");
        }
    }

    #[test]
    fn ol004_equality_conflict() {
        let diags = lint("a = b\nb = c\na != c");
        assert_eq!(rules(&diags), ["OL004"]);
        assert_eq!(diags[0].axioms, [0, 1, 2]);
        assert!(matches!(diags[0].claim, Some(Claim::Unsatisfiable)));
        assert!(lint("a = b\nc != d").is_empty());
    }

    #[test]
    fn ol004_self_inequality() {
        let diags = lint("a != a");
        assert_eq!(rules(&diags), ["OL004"]);
    }

    #[test]
    fn ol005_cardinality_tension() {
        let diags = lint("x : r max 1\nr(x, a)\nr(x, b)");
        assert_eq!(rules(&diags), ["OL005"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(lint("x : r max 2\nr(x, a)\nr(x, b)").is_empty());
    }

    #[test]
    fn ol005_inverse_role_counts_predecessors() {
        let diags = lint("x : inverse r max 1\nr(a, x)\nr(b, x)");
        assert_eq!(rules(&diags), ["OL005"]);
    }

    #[test]
    fn ol006_bottom_assertion() {
        let diags = lint("x : Nothing");
        assert_eq!(rules(&diags), ["OL006"]);
        assert!(matches!(diags[0].claim, Some(Claim::Unsatisfiable)));
    }

    #[test]
    fn ol006_nominal_equality_conflict() {
        let diags = lint("a : {b}\na != b");
        assert_eq!(rules(&diags), ["OL006"]);
        // Plain `=`-conflicts are OL004's, not repeated here.
        let diags = lint("a = b\na != b");
        assert_eq!(rules(&diags), ["OL004"]);
    }

    #[test]
    fn ol006_negated_self_nominal() {
        let diags = lint("a : not {a, b}");
        assert_eq!(rules(&diags), ["OL006"]);
    }

    #[test]
    fn ol007_material_chain_is_a_warning() {
        // The paper's penguin: material Bird ↦ Fly tolerates the exception.
        let diags = lint(
            "Penguin SubClassOf Bird
             Bird MaterialSubClassOf Fly
             tweety : Penguin
             tweety : not Fly",
        );
        assert_eq!(rules(&diags), ["OL007"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].claim.is_none());
    }

    #[test]
    fn clean_kb_is_clean() {
        assert!(lint(
            "Penguin SubClassOf Bird
             tweety : Penguin
             r(tweety, w)"
        )
        .is_empty());
    }
}
