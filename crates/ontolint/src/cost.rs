//! Family C: reduction-cost estimation (`OL201`–`OL202`).
//!
//! The Definitions 5–7 transformation is linear per polarity, but strong
//! inclusions emit both polarities and material inclusions wrap a
//! negation, so individual axioms can still fan out noticeably. These
//! rules measure the *exact* induced size by running the transformation
//! on a singleton KB per axiom — cheap, and never an estimate.

use crate::diagnostics::{Diagnostic, Severity};
use shoin4::{transform_kb, KnowledgeBase4};

/// An axiom is "expensive" when its classical image is at least this many
/// times its own size — only strong inclusions (which emit both
/// polarities) reach 2×; everything else stays near 1×…
const BLOWUP_FACTOR: usize = 2;
/// …and at least this big in absolute terms (tiny axioms can't be slow).
const BLOWUP_FLOOR: usize = 16;

/// Run both cost rules.
pub fn run(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    per_axiom_cost(kb, out);
    kb_summary(kb, out);
}

/// `OL201` — one axiom whose classical image is disproportionately large.
fn per_axiom_cost(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    for (i, ax) in kb.axioms().iter().enumerate() {
        let before = ax.size();
        let singleton = KnowledgeBase4::from_axioms([ax.clone()]);
        let after = transform_kb(&singleton).size();
        if after >= BLOWUP_FLOOR && after >= BLOWUP_FACTOR * before {
            out.push(Diagnostic {
                rule: "OL201",
                severity: Severity::Info,
                axioms: vec![i],
                subject: None,
                message: format!(
                    "axiom `{ax}` grows from {before} to {after} nodes under \
                     the Definitions 5–7 reduction ({:.1}×)",
                    after as f64 / before as f64
                ),
                suggestion: Some(
                    "split the axiom, or check whether a strong inclusion \
                     really needs its contrapositive half"
                        .to_string(),
                ),
                claim: None,
            });
        }
    }
}

/// `OL202` — the KB-level before/after summary of the reduction.
fn kb_summary(kb: &KnowledgeBase4, out: &mut Vec<Diagnostic>) {
    if kb.is_empty() {
        return;
    }
    let before = kb.size();
    let induced = transform_kb(kb);
    let after = induced.size();
    out.push(Diagnostic {
        rule: "OL202",
        severity: Severity::Info,
        axioms: Vec::new(),
        subject: None,
        message: format!(
            "the induced classical KB is {after} nodes in {} axioms, from \
             {before} nodes in {} four-valued axioms ({:.2}×)",
            induced.len(),
            kb.len(),
            after as f64 / before as f64
        ),
        suggestion: None,
        claim: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let kb = shoin4::parse_kb4(src).unwrap();
        let mut out = Vec::new();
        run(&kb, &mut out);
        out
    }

    #[test]
    fn ol201_flags_expensive_strong_inclusions() {
        // A strong inclusion over sizable sides doubles into both
        // polarities, hitting the 2× factor above the absolute floor.
        let diags = lint("A and B and C and D StrongSubClassOf E and F and G and H");
        assert!(diags.iter().any(|d| d.rule == "OL201"), "{diags:?}");
        // The same sides under an internal inclusion stay near 1×.
        let diags = lint("A and B and C and D SubClassOf E and F and G and H");
        assert!(diags.iter().all(|d| d.rule != "OL201"), "{diags:?}");
    }

    #[test]
    fn ol201_quiet_on_cheap_axioms() {
        let diags = lint("A SubClassOf B\nx : A");
        assert!(diags.iter().all(|d| d.rule != "OL201"), "{diags:?}");
    }

    #[test]
    fn ol202_summarizes_nonempty_kbs() {
        let diags = lint("A SubClassOf B");
        let summary: Vec<_> = diags.iter().filter(|d| d.rule == "OL202").collect();
        assert_eq!(summary.len(), 1);
        assert!(summary[0].message.contains("induced classical KB"));
        assert!(lint("").is_empty());
    }
}
