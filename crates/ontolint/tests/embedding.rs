//! The classical-embedding lint path: `lint_kb` must behave exactly like
//! parsing the same source as SHOIN(D)4 (where `⊑` is internal
//! inclusion, the paper's Example 2 embedding) and linting that. Every
//! classically-expressible rule is exercised through *both* parse paths
//! and the diagnostic lists are compared structurally — rule, severity,
//! axiom indices, subjects, claims.
//!
//! Rules needing four-valued-only syntax (negative role assertions for
//! OL002, material inclusions for OL007, mixed inclusion kinds for
//! OL105) cannot fire through the embedding; the last test pins that
//! down by showing the classical parser rejects the trigger syntax.

use ontolint::{lint_kb, lint_kb4, Diagnostic, Severity};

/// Lint `src` through both paths — the classical parser followed by the
/// embedding, and the four-valued parser directly — and require
/// structurally identical findings.
fn parity(src: &str) -> Vec<Diagnostic> {
    let classical = dl::parser::parse_kb(src).expect("classical parse");
    let via_embedding = lint_kb(&classical);
    let four = shoin4::parse_kb4(src).expect("four-valued parse");
    let direct = lint_kb4(&four);
    assert_eq!(
        via_embedding, direct,
        "embedding path diverges from the direct path on:\n{src}"
    );
    via_embedding
}

fn has(diags: &[Diagnostic], rule: &str) -> bool {
    diags.iter().any(|d| d.rule == rule)
}

#[test]
fn ol001_direct_contradiction_fires_through_the_embedding() {
    let diags = parity("x : A\nx : not A");
    assert!(has(&diags, "OL001"), "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].claim.is_some());
}

#[test]
fn ol003_chain_contradiction_fires_through_the_embedding() {
    let diags = parity(
        "Penguin SubClassOf Bird
         x : Penguin
         x : not Bird",
    );
    assert!(has(&diags, "OL003"), "{diags:?}");
    assert_eq!(diags[0].axioms, [0, 1, 2]);
}

#[test]
fn ol004_equality_conflicts_fire_through_the_embedding() {
    let diags = parity("a = b\nb = c\na != c");
    assert!(has(&diags, "OL004"), "{diags:?}");
    let diags = parity("a != a");
    assert!(has(&diags, "OL004"), "{diags:?}");
}

#[test]
fn ol005_cardinality_tension_fires_through_the_embedding() {
    let diags = parity("x : r max 1\nr(x, a)\nr(x, b)");
    assert!(has(&diags, "OL005"), "{diags:?}");
}

#[test]
fn ol006_classical_strength_conflicts_fire_through_the_embedding() {
    assert!(has(&parity("x : Nothing"), "OL006"));
    assert!(has(&parity("a : {b}\na != b"), "OL006"));
}

#[test]
fn hygiene_rules_fire_through_the_embedding() {
    // OL101 orphans, OL102 cycles, OL103 tautologies, OL104 duplicates.
    let diags = parity("A SubClassOf B\nx : A\nOrphan SubClassOf A");
    assert!(has(&diags, "OL101"), "{diags:?}");
    let diags = parity("A SubClassOf B\nB SubClassOf A\nC SubClassOf A");
    assert!(has(&diags, "OL102"), "{diags:?}");
    let diags = parity(
        "A SubClassOf Thing
         Nothing SubClassOf B
         A SubClassOf A
         r SubRoleOf r",
    );
    assert!(has(&diags, "OL103"), "{diags:?}");
    let diags = parity("A SubClassOf B\nx : A\nA SubClassOf B");
    assert!(has(&diags, "OL104"), "{diags:?}");
}

#[test]
fn cost_rules_fire_through_the_embedding() {
    // A deep concept is flagged for reduction growth; the KB summary
    // always fires.
    let diags = parity("x : r some (s some (A and B and C))\ny : A");
    assert!(has(&diags, "OL202"), "{diags:?}");
}

#[test]
fn dataflow_rules_fire_through_the_embedding() {
    // OL301: the `⊑ Thing` axiom is dead. OL302: two signature islands.
    let diags = parity("A SubClassOf Thing\nA SubClassOf B\nC SubClassOf D");
    assert!(has(&diags, "OL301"), "{diags:?}");
    assert!(has(&diags, "OL302"), "{diags:?}");
    // OL303: a contradiction whose contamination front travels far.
    let diags = parity(
        "x : A
         x : not A
         A SubClassOf B
         B SubClassOf C
         C SubClassOf D",
    );
    assert!(has(&diags, "OL303"), "{diags:?}");
}

/// Clean KBs stay clean through both paths (no spurious findings from
/// the embedding's suffix bookkeeping).
#[test]
fn clean_kbs_are_clean_through_the_embedding() {
    let diags = parity(
        "A SubClassOf B
         B SubClassOf C
         x : A
         y : B
         r(x, y)",
    );
    assert!(
        diags.iter().all(|d| d.severity == Severity::Info),
        "{diags:?}"
    );
}

/// OL002 (negative role assertions), OL007 (material chains) and OL105
/// (mixed inclusion kinds) require syntax the classical language does
/// not have — the embedding can never produce them, and the classical
/// parser rejects their triggers.
#[test]
fn four_valued_only_rules_are_inexpressible_classically() {
    for src in [
        "r(a, b)\nnot r(a, b)",
        "Bird MaterialSubClassOf Fly",
        "A SubClassOf B\nA StrongSubClassOf B",
    ] {
        assert!(
            dl::parser::parse_kb(src).is_err(),
            "classical parser unexpectedly accepts:\n{src}"
        );
        assert!(shoin4::parse_kb4(src).is_ok(), "{src}");
    }
}
