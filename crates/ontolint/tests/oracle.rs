//! The linter's central contract, machine-checked: **zero false positives
//! at `Severity::Error`**. Every `Error` diagnostic carries a `Claim`;
//! this harness confirms each claim with an exact procedure —
//!
//! * contested facts against the `fourmodels` enumeration oracle
//!   (quantifying over *all* four-valued models on the KB's domain);
//! * unsatisfiability against the tableau (exact by Theorem 6; the
//!   enumeration oracle pins individuals to distinct elements, so it is
//!   stricter than the real semantics whenever `SameIndividual` or
//!   nominal merges are involved and cannot referee those claims).
//!
//! Plus recall on planted findings and the lint-throughput budget.

use fourmodels::check::{
    entailed_axiom_by_enumeration, entailed_negative_info, entailed_positive_info,
};
use fourmodels::enumerate::{EnumConfig, ModelIter};
use ontogen::lintseed::{lint_seeded_kb4, lint_seeded_kb4_sized, LintSeedParams};
use ontogen::random::{random_kb4, RandomParams};
use ontolint::{lint_kb4, Claim, Diagnostic, Severity};
use shoin4::{Axiom4, KnowledgeBase4, Reasoner4};

/// Confirm one `Error` claim with the appropriate exact procedure.
/// Panics with `context` if the claim is a false positive.
fn verify_claim(kb: &KnowledgeBase4, diag: &Diagnostic, context: &str) {
    let claim = diag
        .claim
        .as_ref()
        .unwrap_or_else(|| panic!("{context}: Error diagnostic {diag} lacks a claim"));
    match claim {
        Claim::ContestedConcept {
            individual,
            concept,
        } => {
            let cfg = EnumConfig::for_kb(kb);
            assert!(
                entailed_positive_info(kb, &cfg, individual, concept),
                "{context}: {diag} — positive info not entailed"
            );
            assert!(
                entailed_negative_info(kb, &cfg, individual, concept),
                "{context}: {diag} — negative info not entailed"
            );
        }
        Claim::ContestedRole { role, a, b } => {
            let cfg = EnumConfig::for_kb(kb);
            assert!(
                entailed_axiom_by_enumeration(
                    kb,
                    &cfg,
                    &Axiom4::RoleAssertion(role.clone(), a.clone(), b.clone())
                ),
                "{context}: {diag} — positive role info not entailed"
            );
            assert!(
                entailed_axiom_by_enumeration(
                    kb,
                    &cfg,
                    &Axiom4::NegativeRoleAssertion(role.clone(), a.clone(), b.clone())
                ),
                "{context}: {diag} — negative role info not entailed"
            );
        }
        Claim::Unsatisfiable => {
            let r = Reasoner4::new(kb);
            assert!(
                !r.is_satisfiable().expect("tableau within limits"),
                "{context}: {diag} — KB is satisfiable after all"
            );
        }
    }
}

fn verify_all_errors(kb: &KnowledgeBase4, context: &str) -> usize {
    let errors: Vec<Diagnostic> = lint_kb4(kb)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    for d in &errors {
        verify_claim(kb, d, context);
    }
    errors.len()
}

#[test]
fn handcrafted_error_findings_survive_the_oracle() {
    // One trigger per Error rule (and a few shape variants).
    let cases = [
        // OL001: direct, complex-concept, and nnf-rewritten complements.
        "x : A\nx : not A",
        "x : A and B\nx : not (A and B)",
        "x : A or B\nx : not A and not B",
        "x : r some A\nx : r only not A",
        // OL002.
        "r(a, b)\nnot r(a, b)",
        // OL003: internal chain, strong contraposition, negative rhs.
        "Penguin SubClassOf Bird\nx : Penguin\nx : not Bird",
        "A StrongSubClassOf B\nB StrongSubClassOf C\nx : A\nx : not C",
        "A SubClassOf not B\nx : A\nx : B",
        // OL004.
        "a = b\nb = c\na != c",
        "a != a",
        // OL006.
        "x : Nothing",
        "a : {b}\na != b",
        "a : not {a, b}",
    ];
    for src in cases {
        let kb = shoin4::parse_kb4(src).unwrap();
        let n = verify_all_errors(&kb, src);
        assert!(n > 0, "{src}: expected at least one Error finding");
    }
}

#[test]
fn error_findings_on_seeded_kbs_survive_the_tableau() {
    // Seeded KBs have too many signature atoms for exhaustive
    // enumeration; the tableau is exact by Theorem 6 and referees every
    // contested claim as a pair of classical entailments on `K̄`.
    for seed in 0..5u64 {
        let (kb, _) = lint_seeded_kb4(&LintSeedParams {
            seed,
            ..LintSeedParams::default()
        });
        let errors: Vec<Diagnostic> = lint_kb4(&kb)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.len() >= 2,
            "seed {seed}: expected the planted Errors"
        );
        let r = Reasoner4::new(&kb);
        for d in &errors {
            match d.claim.as_ref().expect("Error diagnostics carry claims") {
                Claim::ContestedConcept {
                    individual,
                    concept,
                } => {
                    assert!(
                        r.has_positive_info(individual, concept).unwrap()
                            && r.has_negative_info(individual, concept).unwrap(),
                        "seed {seed}: {d} — not contested per the tableau"
                    );
                }
                Claim::ContestedRole { role, a, b } => {
                    assert!(
                        r.has_positive_role_info(role, a, b).unwrap()
                            && r.has_negative_role_info(role, a, b).unwrap(),
                        "seed {seed}: {d} — not contested per the tableau"
                    );
                }
                Claim::Unsatisfiable => {
                    assert!(!r.is_satisfiable().unwrap(), "seed {seed}: {d}");
                }
            }
        }
    }
}

#[test]
fn error_findings_on_random_kbs_survive_the_oracle() {
    let mut verified = 0usize;
    for seed in 0..40u64 {
        // A deliberately tiny signature: the enumeration space is
        // 4^(concepts·domain + roles·domain²), so 2 concepts, 1 role and
        // 2 individuals give 4⁸ interpretations per entailment check.
        let kb = random_kb4(
            &RandomParams {
                seed,
                n_tbox: 3,
                n_abox: 6,
                max_depth: 1,
                n_concepts: 2,
                n_roles: 1,
                n_individuals: 2,
                number_restrictions: false,
                inverse_roles: false,
            },
            (0.3, 0.4, 0.3),
        );
        let cfg = EnumConfig::for_kb(&kb);
        if ModelIter::new(&kb, &cfg).total() > 2_000_000 {
            continue;
        }
        verified += verify_all_errors(&kb, &format!("random seed {seed}"));
    }
    // The sweep must actually exercise the claim checker.
    assert!(verified > 0, "no Error findings across the random sweep");
}

#[test]
fn planted_findings_are_recalled() {
    let (kb, truth) = lint_seeded_kb4(&LintSeedParams::default());
    let diags = lint_kb4(&kb);
    let contested = ontolint::certain_contested_facts(&diags);
    for pair in &truth.contested_concepts {
        assert!(contested.contains(pair), "missed planted {pair:?}");
    }
    for (r, a, b) in &truth.contested_roles {
        assert!(
            diags.iter().any(|d| matches!(
                &d.claim,
                Some(Claim::ContestedRole { role, a: x, b: y })
                    if role == r && x == a && y == b
            )),
            "missed planted contested role {r}({a}, {b})"
        );
    }
    assert!(
        diags.iter().filter(|d| d.rule == "OL104").count() >= 1,
        "missed planted duplicates"
    );
    assert_eq!(
        diags.iter().filter(|d| d.rule == "OL102").count(),
        truth.cycles,
        "missed planted cycles"
    );
    for orphan in &truth.orphans {
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "OL101" && d.subject.as_deref() == Some(orphan.as_str())),
            "missed planted orphan {orphan}"
        );
    }
}

#[test]
fn lint_throughput_meets_the_budget() {
    // Acceptance criterion: a 1000-axiom generated KB lints in under
    // 50 ms. Generous slack under debug builds is deliberate — the
    // release-mode number is far below the budget.
    let (kb, _) = lint_seeded_kb4_sized(7, 1000);
    assert!(kb.len() >= 900);
    let start = std::time::Instant::now();
    let diags = lint_kb4(&kb);
    let elapsed = start.elapsed();
    assert!(!diags.is_empty());
    let budget = if cfg!(debug_assertions) {
        std::time::Duration::from_millis(500)
    } else {
        std::time::Duration::from_millis(50)
    };
    assert!(
        elapsed < budget,
        "linting {} axioms took {elapsed:?} (budget {budget:?})",
        kb.len()
    );
}
