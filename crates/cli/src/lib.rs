//! The `shoin4` command-line reasoner: load a SHOIN(D)4 ontology in the
//! text syntax and ask it things — satisfiability, four-valued queries,
//! contradiction reports, the classical translation, format conversion,
//! and the paper's Table 4.
//!
//! The command surface is a thin, fully testable library: [`run`] takes
//! the argument vector and returns the output text (or a [`CliError`]),
//! and `main.rs` only does I/O plumbing.

use dl::IndividualName;
use fourval::TruthValue;
use shoin4::analysis::{classify4, contradiction_report_seeded};
use shoin4::reasoner4::QueryOptions;
use shoin4::{parse_kb4, KnowledgeBase4, Reasoner4};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Errors surfaced to the user with exit code 1.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage; the string is the usage text.
    Usage(String),
    /// File I/O failure.
    Io(String, std::io::Error),
    /// Ontology parse failure.
    Parse(String),
    /// Reasoning hit a resource limit.
    Reasoning(tableau::ReasonerError),
    /// Snapshot decode failure.
    Snapshot(dl::snapshot::SnapshotError),
    /// Session storage (WAL/snapshot) failure.
    Session(shoin4::incremental::SessionError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "{u}"),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Reasoning(e) => write!(f, "reasoning aborted: {e}"),
            CliError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            CliError::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl From<tableau::ReasonerError> for CliError {
    fn from(e: tableau::ReasonerError) -> Self {
        CliError::Reasoning(e)
    }
}

impl From<shoin4::incremental::SessionError> for CliError {
    fn from(e: shoin4::incremental::SessionError) -> Self {
        CliError::Session(e)
    }
}

/// Usage text.
pub const USAGE: &str = "shoin4 — paraconsistent OWL DL reasoner (SHOIN(D)4)

USAGE:
    shoin4 check <ontology> [FLAGS]          satisfiability + statistics
    shoin4 query <ontology> <ind> <concept>  four-valued instance query
    shoin4 report <ontology> [FLAGS]         contradiction survey (⊤ map)
    shoin4 lint <ontology> [--format json]   static analysis (no tableau)
    shoin4 analyze <ontology> [--format json]
                                             static hardness analysis: each
                                             module's Horn core, disjunctive
                                             residue, ∃-depth bound and the
                                             predicted search-cost score the
                                             serving lanes admit on
    shoin4 modules <ontology> [--format json]
                                             signature dataflow: dependency
                                             components, dead axioms, the
                                             clean/contaminated partition and
                                             per-concept module sizes
    shoin4 classify <ontology> [FLAGS]       internal-inclusion taxonomy
    shoin4 transform <ontology>              print the classical induced KB
    shoin4 convert <in> <out>                text ⇄ binary snapshot (.dlkb)
    shoin4 session [SESSION FLAGS]           incremental add/retract/query
                                             session (script from --script
                                             FILE or stdin via `--script -`)
    shoin4 serve [SERVE FLAGS]               multi-tenant TCP server (one
                                             session per tenant, line
                                             protocol, JSON replies)
    shoin4 table4                            regenerate the paper's Table 4

FLAGS (check/report/classify, any order):
    --jobs N            N ≥ 1 worker threads (absent = auto)
    --stats             append search counters
    --module-scoping    run each query on its extracted module only
    --no-horn           disable the Horn saturation fast path (A/B runs)

SESSION FLAGS (any order):
    --script FILE       verb script; `-` reads stdin (default `-`)
    --dir DIR           durable session directory (WAL + snapshots);
                        omitted = in-memory session
    --snapshot-every N  compact the WAL every N mutations (default 256)
    --stats             append search + cache counters
    --no-horn           disable the Horn saturation fast path

SERVE FLAGS (any order; --listen required):
    --listen ADDR       bind address, e.g. 127.0.0.1:7474 (port 0 = any
                        free port; the bound address is printed to stderr)
    --workers N         worker threads executing admitted requests (4)
    --queue-depth N     admission queue bound; beyond it requests are
                        shed with an `overloaded` error (64)
    --budget-ms N       per-request tableau time budget (10000)
    --kb ID=PATH        preload tenant ID from an ontology file
                        (repeatable)
    --serve-for-ms N    serve for N ms, then shut down and print
                        admission + shared-cache stats (for smoke tests)
    --lanes             cost-aware admission: requests whose predicted
                        hardness score reaches the threshold queue on a
                        separate heavy lane (see `shoin4 analyze`)
    --heavy-workers N   worker threads on the heavy lane (2; implies
                        --lanes)
    --heavy-queue-depth N
                        heavy-lane queue bound (16; implies --lanes)
    --heavy-budget-ms N per-request time budget on the heavy lane only
                        (absent = the global --budget-ms; implies
                        --lanes)
    --hardness-threshold X
                        score at which a request routes heavy (8;
                        implies --lanes)

Session scripts take one verb per line: `add <axiom>`,
`retract <axiom>`, `query <ind> <concept>`, `role <role> <a> <b>`,
`check`, plus `DataRole:` declarations, blank lines and # comments.

The serve protocol takes the same verbs, one per line over TCP, after
a `tenant <id>` line selects the session; replies are JSON objects
(see README §Serving).

Ontologies use the line-based Manchester-like syntax (see README).";

fn load_kb4(
    path: &str,
    read: &dyn Fn(&str) -> std::io::Result<Vec<u8>>,
) -> Result<KnowledgeBase4, CliError> {
    let bytes = read(path).map_err(|e| CliError::Io(path.to_string(), e))?;
    if Path::new(path).extension().is_some_and(|e| e == "dlkb") {
        let kb = dl::snapshot::decode(&bytes).map_err(CliError::Snapshot)?;
        return Ok(KnowledgeBase4::from_classical(
            &kb,
            shoin4::InclusionKind::Internal,
        ));
    }
    let text =
        String::from_utf8(bytes).map_err(|_| CliError::Parse(format!("{path} is not UTF-8")))?;
    parse_kb4(&text).map_err(|e| CliError::Parse(e.to_string()))
}

/// Trailing flags accepted by `check`, `report` and `classify`.
#[derive(Debug, Default, Clone, Copy)]
struct QueryFlags {
    /// `--jobs N`: worker threads (0 = auto).
    jobs: usize,
    /// `--stats`: append the search-counter block.
    stats: bool,
    /// `--module-scoping`: run each query on its extracted module.
    module_scoping: bool,
    /// `--no-horn`: force every query through the tableau (the Horn
    /// saturation fast path is on by default).
    no_horn: bool,
}

impl QueryFlags {
    fn config(self) -> tableau::Config {
        tableau::Config {
            module_scoping: self.module_scoping,
            horn_path: !self.no_horn,
            ..tableau::Config::default()
        }
    }

    fn options(self) -> QueryOptions {
        QueryOptions {
            jobs: self.jobs,
            ..QueryOptions::default()
        }
    }
}

/// Parse trailing query flags: `[--jobs N]` (N ≥ 1 worker threads;
/// absent = auto), `[--stats]` (append search counters),
/// `[--module-scoping]` (scope each query to its module) and
/// `[--no-horn]` (disable the Horn fast path), in any order.
fn parse_query_flags(rest: &[String]) -> Result<QueryFlags, CliError> {
    let mut flags = QueryFlags::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => flags.jobs = n,
                _ => return Err(CliError::Usage(USAGE.to_string())),
            },
            "--stats" => flags.stats = true,
            "--module-scoping" => flags.module_scoping = true,
            "--no-horn" => flags.no_horn = true,
            _ => return Err(CliError::Usage(USAGE.to_string())),
        }
    }
    Ok(flags)
}

/// The search-counter block printed by `check` and by `--stats`.
fn write_stats_block(out: &mut String, stats: &tableau::Stats) {
    writeln!(
        out,
        "tableau:      {} nodes, {} rule applications, {} branches",
        stats.nodes_created, stats.rule_applications, stats.branches
    )
    .unwrap();
    let kinds: Vec<String> = tableau::clash::KIND_LABELS
        .iter()
        .zip(stats.clashes_by_kind.iter())
        .filter(|(_, &n)| n > 0)
        .map(|(label, n)| format!("{label} {n}"))
        .collect();
    if kinds.is_empty() {
        writeln!(out, "clashes:      {}", stats.clashes).unwrap();
    } else {
        writeln!(
            out,
            "clashes:      {} ({})",
            stats.clashes,
            kinds.join(", ")
        )
        .unwrap();
    }
    writeln!(
        out,
        "search:       {} backjumps, {} graph clones, trail peak {}, branch depth {}",
        stats.backjumps, stats.graph_clones, stats.trail_len_peak, stats.branch_depth_peak
    )
    .unwrap();
    // Module-scoping counters appear only when scoping actually ran, so
    // the unscoped output (pinned by older tests and scripts) is stable.
    if stats.scoped_queries > 0 {
        writeln!(
            out,
            "modules:      {} scoped queries, {} module axioms total, {} µs extracting",
            stats.scoped_queries,
            stats.module_axioms,
            stats.module_extraction_ns / 1_000
        )
        .unwrap();
    }
    // Likewise for the Horn fast path: the line appears only once a
    // query was actually routed (answered or fell back), so tableau-only
    // runs and `--no-horn` keep the historical block byte-identical.
    if stats.horn_queries > 0 || stats.horn_fallbacks > 0 {
        writeln!(
            out,
            "horn:         {} saturated queries, {} clauses, {} rounds, {} fallbacks",
            stats.horn_queries, stats.horn_clauses, stats.saturation_rounds, stats.horn_fallbacks
        )
        .unwrap();
    }
    // Cache observability (hits/misses): printed only once some cache
    // was actually consulted, so cache-free runs keep the historical
    // block byte-identical.
    let consulted = stats.entailment_cache_hits
        + stats.entailment_cache_misses
        + stats.engine_cache_hits
        + stats.engine_cache_misses
        + stats.horn_cache_hits
        + stats.horn_cache_misses;
    if consulted > 0 {
        writeln!(
            out,
            "caches:       entailments {}/{}, engines {}/{}, horn programs {}/{} (hits/misses)",
            stats.entailment_cache_hits,
            stats.entailment_cache_misses,
            stats.engine_cache_hits,
            stats.engine_cache_misses,
            stats.horn_cache_hits,
            stats.horn_cache_misses
        )
        .unwrap();
    }
    if stats.mutations > 0 {
        writeln!(
            out,
            "session:      {} mutations invalidated {} modules, {} entailments, {} told rows",
            stats.mutations,
            stats.invalidated_modules,
            stats.invalidated_entailments,
            stats.invalidated_told_rows
        )
        .unwrap();
    }
}

/// The `modules` subcommand: the signature-dataflow view of a KB —
/// dependency components, dead axioms, the clean/contaminated partition
/// seeded from the linter's contradiction findings, and the size of the
/// module each signature concept's queries actually run on.
fn modules_report(kb: &shoin4::KnowledgeBase4, json: bool) -> String {
    use ontolint::dataflow::{contradiction_seeds, propagate, ModuleExtractor};
    use shoin4::dataflow::{concept_seed, full_signature_seed};

    let extractor = ModuleExtractor::new(kb);
    let graph = extractor.graph();
    let components = graph.components();
    let full = extractor.extract(&full_signature_seed(kb));
    let dead: Vec<usize> = (0..kb.len()).filter(|i| !full.axioms.contains(i)).collect();
    let seeds = contradiction_seeds(&ontolint::lint_kb4(kb));
    let cont = propagate(graph, &seeds);
    let sizes: Vec<(dl::ConceptName, usize)> =
        ontolint::dataflow::signature::signature_concepts(kb)
            .into_iter()
            .map(|name| {
                let m = extractor.extract(&concept_seed(&dl::Concept::Atomic(name.clone())));
                (name, m.axioms.len())
            })
            .collect();

    if json {
        let comp_json: Vec<jsonio::Value> = components
            .iter()
            .map(|c| jsonio::Value::Array(c.iter().map(|&i| i.into()).collect()))
            .collect();
        let idx_array = |v: &[usize]| jsonio::Value::Array(v.iter().map(|&i| i.into()).collect());
        let module_json: Vec<jsonio::Value> = sizes
            .iter()
            .map(|(name, size)| {
                jsonio::Value::object([
                    ("concept", name.as_str().into()),
                    ("module_size", (*size).into()),
                ])
            })
            .collect();
        let value = jsonio::Value::object([
            ("axioms", kb.len().into()),
            ("components", jsonio::Value::Array(comp_json)),
            ("dead_axioms", idx_array(&dead)),
            (
                "contamination",
                jsonio::Value::object([
                    ("seeds", idx_array(&cont.seeds)),
                    ("contaminated", idx_array(&cont.contaminated)),
                    ("clean", idx_array(&cont.clean)),
                    (
                        "max_radius",
                        match cont.max_radius() {
                            Some(r) => r.into(),
                            None => jsonio::Value::Null,
                        },
                    ),
                ]),
            ),
            ("modules", jsonio::Value::Array(module_json)),
        ]);
        let mut s = value.to_string();
        s.push('\n');
        return s;
    }

    let mut out = String::new();
    writeln!(out, "axioms:        {}", kb.len()).unwrap();
    let comp_sizes: Vec<String> = components.iter().map(|c| c.len().to_string()).collect();
    writeln!(
        out,
        "components:    {} (sizes {})",
        components.len(),
        comp_sizes.join(", ")
    )
    .unwrap();
    if dead.is_empty() {
        writeln!(out, "dead axioms:   none").unwrap();
    } else {
        let ids: Vec<String> = dead.iter().map(|i| i.to_string()).collect();
        writeln!(out, "dead axioms:   {} ({})", dead.len(), ids.join(", ")).unwrap();
    }
    if cont.seeds.is_empty() {
        writeln!(out, "contamination: none detected").unwrap();
    } else {
        writeln!(
            out,
            "contamination: {} seed axioms, {} contaminated / {} clean, max radius {}",
            cont.seeds.len(),
            cont.contaminated.len(),
            cont.clean.len(),
            cont.max_radius().unwrap_or(0),
        )
        .unwrap();
    }
    writeln!(out, "module sizes:").unwrap();
    for (name, size) in &sizes {
        writeln!(out, "  {name}  {size}").unwrap();
    }
    out
}

/// The `analyze` subcommand: the static hardness view of a KB — one row
/// per signature-dataflow module with its Horn/residue stratification,
/// ∃-depth bound, predicted clause count and the calibrated score the
/// serving layer's cost-aware lanes admit on.
fn analyze_report(kb: &shoin4::KnowledgeBase4, json: bool) -> String {
    use shoin4::hardness::{analyze_kb, DEFAULT_HEAVY_THRESHOLD};

    let analysis = analyze_kb(kb);
    let lane = |score: f64| {
        if score >= DEFAULT_HEAVY_THRESHOLD {
            "heavy"
        } else {
            "cheap"
        }
    };

    if json {
        let idx_array = |v: &[usize]| jsonio::Value::Array(v.iter().map(|&i| i.into()).collect());
        let module_json: Vec<jsonio::Value> = analysis
            .modules
            .iter()
            .map(|m| {
                let cost = &m.report.cost;
                jsonio::Value::object([
                    ("axioms", idx_array(&m.axioms)),
                    ("residue_axioms", idx_array(&m.residue_axioms)),
                    ("images", cost.images.into()),
                    ("horn_core", cost.horn_core.into()),
                    ("residue", cost.residue.into()),
                    ("branch_points", (cost.branch_points as i64).into()),
                    (
                        "exists_depth",
                        match cost.exists_depth {
                            Some(d) => (d as i64).into(),
                            None => jsonio::Value::Null,
                        },
                    ),
                    ("predicted_clauses", (cost.predicted_clauses as i64).into()),
                    ("score", m.report.score.into()),
                    ("lane", lane(m.report.score).into()),
                ])
            })
            .collect();
        let value = jsonio::Value::object([
            ("axioms", kb.len().into()),
            ("modules", jsonio::Value::Array(module_json)),
            (
                "heavy_modules",
                analysis.heavy_modules(DEFAULT_HEAVY_THRESHOLD).into(),
            ),
            ("max_score", analysis.max_score().into()),
            ("heavy_threshold", DEFAULT_HEAVY_THRESHOLD.into()),
        ]);
        let mut s = value.to_string();
        s.push('\n');
        return s;
    }

    let mut out = String::new();
    writeln!(out, "axioms:        {}", kb.len()).unwrap();
    writeln!(
        out,
        "modules:       {} ({} heavy at threshold {DEFAULT_HEAVY_THRESHOLD})",
        analysis.modules.len(),
        analysis.heavy_modules(DEFAULT_HEAVY_THRESHOLD),
    )
    .unwrap();
    writeln!(out, "max score:     {:.1}", analysis.max_score()).unwrap();
    if analysis.modules.is_empty() {
        return out;
    }
    writeln!(
        out,
        "{:>6} {:>6} {:>5} {:>7} {:>8} {:>7} {:>8} {:>7}  lane",
        "module", "axioms", "horn", "residue", "branches", "∃-depth", "clauses", "score"
    )
    .unwrap();
    for (i, m) in analysis.modules.iter().enumerate() {
        let cost = &m.report.cost;
        writeln!(
            out,
            "{:>6} {:>6} {:>5} {:>7} {:>8} {:>7} {:>8} {:>7.1}  {}",
            i,
            m.axioms.len(),
            cost.horn_core,
            cost.residue,
            cost.branch_points,
            match cost.exists_depth {
                Some(d) => d.to_string(),
                None => "∞".to_string(),
            },
            cost.predicted_clauses,
            m.report.score,
            lane(m.report.score),
        )
        .unwrap();
    }
    out
}

/// Execute a session verb script: one verb per line (`add`, `retract`,
/// `query`, `role`, `check`), `DataRole:` declarations, blank lines and
/// `#` comments. Axiom statements use the same line syntax as ontology
/// files; declarations accumulate and scope over the rest of the script.
fn run_session_script(
    session: &mut shoin4::Session,
    text: &str,
    out: &mut String,
) -> Result<(), CliError> {
    use dl::name::{DataRoleName, RoleName};
    use std::collections::BTreeSet;

    let mut declared: BTreeSet<DataRoleName> = BTreeSet::new();
    let parse_axiom = |stmt: &str, declared: &BTreeSet<DataRoleName>, lineno: usize| {
        let mut src = String::new();
        if !declared.is_empty() {
            src.push_str("DataRole:");
            for u in declared {
                src.push(' ');
                src.push_str(u.as_str());
            }
            src.push('\n');
        }
        src.push_str(stmt);
        let kb =
            parse_kb4(&src).map_err(|e| CliError::Parse(format!("script line {lineno}: {e}")))?;
        match kb.axioms() {
            [ax] => Ok(ax.clone()),
            other => Err(CliError::Parse(format!(
                "script line {lineno}: expected one axiom, got {}",
                other.len()
            ))),
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(names) = line.strip_prefix("DataRole:") {
            declared.extend(names.split_whitespace().map(DataRoleName::new));
            continue;
        }
        if line == "check" {
            writeln!(out, "satisfiable: {}", session.is_satisfiable()?).unwrap();
            continue;
        }
        let (verb, arg) = line.split_once(' ').ok_or_else(|| {
            CliError::Parse(format!("script line {lineno}: unreadable verb {line:?}"))
        })?;
        match verb {
            "add" => {
                session.add_axiom(parse_axiom(arg, &declared, lineno)?)?;
                writeln!(out, "added {arg}").unwrap();
            }
            "retract" => {
                let hit = session.retract_axiom(&parse_axiom(arg, &declared, lineno)?)?;
                if hit {
                    writeln!(out, "retracted {arg}").unwrap();
                } else {
                    writeln!(out, "retract no-op {arg}").unwrap();
                }
            }
            "query" => {
                let (ind, concept) = arg.split_once(' ').ok_or_else(|| {
                    CliError::Parse(format!("script line {lineno}: query needs <ind> <concept>"))
                })?;
                let c = dl::parser::parse_concept(concept)
                    .map_err(|e| CliError::Parse(format!("script line {lineno}: {e}")))?;
                let v = session.query(&IndividualName::new(ind), &c)?;
                writeln!(out, "{ind} : {c} = {}", truth_gloss(v)).unwrap();
            }
            "role" => {
                let parts: Vec<&str> = arg.split_whitespace().collect();
                let [r, a, b] = parts[..] else {
                    return Err(CliError::Parse(format!(
                        "script line {lineno}: role needs <role> <a> <b>"
                    )));
                };
                let v = session.query_role(
                    &RoleName::new(r),
                    &IndividualName::new(a),
                    &IndividualName::new(b),
                )?;
                writeln!(out, "{r}({a}, {b}) = {}", truth_gloss(v)).unwrap();
            }
            other => {
                return Err(CliError::Parse(format!(
                    "script line {lineno}: unknown verb {other:?}"
                )))
            }
        }
    }
    Ok(())
}

fn truth_gloss(v: TruthValue) -> &'static str {
    match v {
        TruthValue::True => "t (information: yes)",
        TruthValue::False => "f (information: no)",
        TruthValue::Both => "⊤ (contradictory information)",
        TruthValue::Neither => "⊥ (no information)",
    }
}

/// Run a command line (without the program name). `read`/`write` abstract
/// the filesystem so tests can run hermetically.
pub fn run_with_fs(
    args: &[String],
    read: &dyn Fn(&str) -> std::io::Result<Vec<u8>>,
    write: &mut dyn FnMut(&str, &[u8]) -> std::io::Result<()>,
) -> Result<String, CliError> {
    let mut out = String::new();
    match args {
        [cmd, path, rest @ ..] if cmd == "check" => {
            let flags = parse_query_flags(rest)?;
            let kb = load_kb4(path, read)?;
            let r = Reasoner4::with_options(&kb, flags.config(), flags.options());
            let sat = r.is_satisfiable()?;
            writeln!(out, "axioms:       {}", kb.len()).unwrap();
            writeln!(out, "size:         {}", kb.size()).unwrap();
            writeln!(out, "satisfiable:  {sat}").unwrap();
            write_stats_block(&mut out, &r.stats());
        }
        [cmd, path, ind, concept] if cmd == "query" => {
            let kb = load_kb4(path, read)?;
            let c =
                dl::parser::parse_concept(concept).map_err(|e| CliError::Parse(e.to_string()))?;
            let r = Reasoner4::new(&kb);
            let v = r.query(&IndividualName::new(ind.as_str()), &c)?;
            writeln!(out, "{ind} : {c} = {}", truth_gloss(v)).unwrap();
        }
        [cmd, path, rest @ ..] if cmd == "lint" => {
            let json = match rest {
                [] => false,
                [flag, fmt] if flag == "--format" && fmt == "json" => true,
                _ => return Err(CliError::Usage(USAGE.to_string())),
            };
            let kb = load_kb4(path, read)?;
            let diags = ontolint::lint_kb4(&kb);
            if json {
                out.push_str(&ontolint::diagnostics_to_json(&diags).to_string());
                out.push('\n');
            } else {
                for d in &diags {
                    writeln!(out, "{d}").unwrap();
                }
                let count =
                    |s: ontolint::Severity| diags.iter().filter(|d| d.severity == s).count();
                writeln!(
                    out,
                    "{} findings: {} errors, {} warnings, {} infos",
                    diags.len(),
                    count(ontolint::Severity::Error),
                    count(ontolint::Severity::Warning),
                    count(ontolint::Severity::Info),
                )
                .unwrap();
            }
        }
        [cmd, path, rest @ ..] if cmd == "analyze" => {
            let json = match rest {
                [] => false,
                [flag, fmt] if flag == "--format" && fmt == "json" => true,
                _ => return Err(CliError::Usage(USAGE.to_string())),
            };
            let kb = load_kb4(path, read)?;
            out.push_str(&analyze_report(&kb, json));
        }
        [cmd, path, rest @ ..] if cmd == "modules" => {
            let json = match rest {
                [] => false,
                [flag, fmt] if flag == "--format" && fmt == "json" => true,
                _ => return Err(CliError::Usage(USAGE.to_string())),
            };
            let kb = load_kb4(path, read)?;
            out.push_str(&modules_report(&kb, json));
        }
        [cmd, path, rest @ ..] if cmd == "report" => {
            let flags = parse_query_flags(rest)?;
            let kb = load_kb4(path, read)?;
            // The linter's syntactically-certain ⊤ facts are seeded into
            // the survey so the reasoner skips those queries (fast path).
            let certain = ontolint::certain_contested_facts(&ontolint::lint_kb4(&kb));
            let r = Reasoner4::with_options(&kb, flags.config(), flags.options());
            let report = contradiction_report_seeded(&r, &kb, &certain)?;
            writeln!(
                out,
                "{} facts surveyed: {} contested, {} asserted, {} denied, {} unknown",
                report.total(),
                report.contested.len(),
                report.asserted.len(),
                report.denied.len(),
                report.unknown
            )
            .unwrap();
            writeln!(out, "contamination: {:.1}%", 100.0 * report.contamination()).unwrap();
            for (who, what) in &report.contested {
                writeln!(out, "  ⊤  {who} : {what}").unwrap();
            }
            if flags.stats {
                write_stats_block(&mut out, &r.stats());
            }
        }
        [cmd, path, rest @ ..] if cmd == "classify" => {
            let flags = parse_query_flags(rest)?;
            let kb = load_kb4(path, read)?;
            let r = Reasoner4::with_options(&kb, flags.config(), flags.options());
            let taxonomy = classify4(&r, &kb)?;
            for (class, supers) in &taxonomy {
                let proper: Vec<String> = supers
                    .iter()
                    .filter(|s| s.as_str() != class.as_str())
                    .map(ToString::to_string)
                    .collect();
                if proper.is_empty() {
                    writeln!(out, "{class}").unwrap();
                } else {
                    writeln!(out, "{class} ⊏ {}", proper.join(", ")).unwrap();
                }
            }
            if flags.stats {
                write_stats_block(&mut out, &r.stats());
            }
        }
        [cmd, path] if cmd == "transform" => {
            let kb = load_kb4(path, read)?;
            let induced = shoin4::transform_kb(&kb);
            out.push_str(&dl::printer::print_kb(&induced));
        }
        [cmd, input, output] if cmd == "convert" => {
            let to_binary = Path::new(output).extension().is_some_and(|e| e == "dlkb");
            let bytes = read(input).map_err(|e| CliError::Io(input.clone(), e))?;
            let from_binary = Path::new(input).extension().is_some_and(|e| e == "dlkb");
            let kb = if from_binary {
                dl::snapshot::decode(&bytes).map_err(CliError::Snapshot)?
            } else {
                let text = String::from_utf8(bytes)
                    .map_err(|_| CliError::Parse(format!("{input} is not UTF-8")))?;
                dl::parser::parse_kb(&text).map_err(|e| CliError::Parse(e.to_string()))?
            };
            let payload: Vec<u8> = if to_binary {
                dl::snapshot::encode(&kb).to_vec()
            } else {
                dl::printer::print_kb(&kb).into_bytes()
            };
            write(output, &payload).map_err(|e| CliError::Io(output.clone(), e))?;
            writeln!(
                out,
                "wrote {} ({} axioms, {} bytes)",
                output,
                kb.len(),
                payload.len()
            )
            .unwrap();
        }
        [cmd, rest @ ..] if cmd == "session" => {
            let mut script = "-".to_string();
            let mut dir: Option<String> = None;
            let mut snapshot_every = shoin4::incremental::DEFAULT_SNAPSHOT_EVERY;
            let mut stats = false;
            let mut no_horn = false;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--script" => match it.next() {
                        Some(p) => script = p.clone(),
                        None => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--dir" => match it.next() {
                        Some(p) => dir = Some(p.clone()),
                        None => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--snapshot-every" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) => snapshot_every = n,
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--stats" => stats = true,
                    "--no-horn" => no_horn = true,
                    _ => return Err(CliError::Usage(USAGE.to_string())),
                }
            }
            let bytes = read(&script).map_err(|e| CliError::Io(script.clone(), e))?;
            let text = String::from_utf8(bytes)
                .map_err(|_| CliError::Parse(format!("{script} is not UTF-8")))?;
            let config = tableau::Config {
                horn_path: !no_horn,
                ..tableau::Config::default()
            };
            // Durable sessions live on the real filesystem (the WAL is
            // not expressible through the read/write closures).
            let mut session = match &dir {
                Some(d) => shoin4::Session::open_with(d, config, snapshot_every)?,
                None => shoin4::Session::new(&KnowledgeBase4::new(), config),
            };
            run_session_script(&mut session, &text, &mut out)?;
            writeln!(out, "axioms: {}", session.len()).unwrap();
            if stats {
                write_stats_block(&mut out, &session.stats());
            }
        }
        [cmd, rest @ ..] if cmd == "serve" => {
            let mut listen: Option<String> = None;
            let mut opts = shoin4::serve::ServeOptions::default();
            let mut budget_ms: u64 = 10_000;
            let mut kbs: Vec<(String, String)> = Vec::new();
            let mut serve_for_ms: Option<u64> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--listen" => match it.next() {
                        Some(a) => listen = Some(a.clone()),
                        None => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--workers" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => opts.workers = n,
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--queue-depth" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => opts.queue_depth = n,
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--budget-ms" => match it.next().map(|n| n.parse::<u64>()) {
                        Some(Ok(n)) if n >= 1 => budget_ms = n,
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--kb" => match it.next().and_then(|s| s.split_once('=')) {
                        Some((id, path)) if !id.is_empty() => {
                            kbs.push((id.to_string(), path.to_string()));
                        }
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--serve-for-ms" => match it.next().map(|n| n.parse::<u64>()) {
                        Some(Ok(n)) => serve_for_ms = Some(n),
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--lanes" => {
                        opts.lanes.get_or_insert_with(Default::default);
                    }
                    "--heavy-workers" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => {
                            opts.lanes
                                .get_or_insert_with(Default::default)
                                .heavy_workers = n;
                        }
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--heavy-queue-depth" => match it.next().map(|n| n.parse::<usize>()) {
                        Some(Ok(n)) if n >= 1 => {
                            opts.lanes
                                .get_or_insert_with(Default::default)
                                .heavy_queue_depth = n;
                        }
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--heavy-budget-ms" => match it.next().map(|n| n.parse::<u64>()) {
                        Some(Ok(n)) if n >= 1 => {
                            opts.lanes.get_or_insert_with(Default::default).heavy_budget =
                                Some(std::time::Duration::from_millis(n));
                        }
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    "--hardness-threshold" => match it.next().map(|n| n.parse::<f64>()) {
                        Some(Ok(x)) if x.is_finite() => {
                            opts.lanes.get_or_insert_with(Default::default).threshold = x;
                        }
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    },
                    _ => return Err(CliError::Usage(USAGE.to_string())),
                }
            }
            let listen = listen.ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
            let config = tableau::Config {
                time_budget: Some(std::time::Duration::from_millis(budget_ms)),
                ..tableau::Config::default()
            };
            let registry = std::sync::Arc::new(shoin4::serve::Registry::new(config));
            for (id, path) in &kbs {
                let kb = load_kb4(path, read)?;
                registry.register(id, &kb);
            }
            let server = shoin4::serve::Server::bind(listen.as_str(), registry, opts)
                .map_err(|e| CliError::Io(listen.clone(), e))?;
            // Announce the bound address eagerly (stderr, so piping the
            // normal output stream stays clean) — clients and the smoke
            // test wait for this line before connecting.
            eprintln!("listening on {}", server.local_addr());
            match serve_for_ms {
                // Bounded run: serve for the window, then report.
                Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
                // Unbounded run: park this thread; the acceptor and the
                // worker pool do all the work until the process is killed.
                None => loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                },
            }
            let addr = server.local_addr();
            let stats = server.stats().to_json();
            let shared = server.registry().shared().stats();
            server.shutdown();
            writeln!(out, "served on {addr}").unwrap();
            writeln!(out, "admission: {stats}").unwrap();
            writeln!(
                out,
                "shared-cache: hit_ratio={:.3} engines={} horn={} rows={}",
                shared.hit_ratio(),
                shared.engines,
                shared.horn_programs,
                shared.rows
            )
            .unwrap();
        }
        [cmd] if cmd == "table4" => {
            out.push_str(&fourmodels::table4::render_table4());
        }
        _ => return Err(CliError::Usage(USAGE.to_string())),
    }
    Ok(out)
}

/// Run against the real filesystem (`-` reads stdin, for piped session
/// scripts).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let read = |p: &str| -> std::io::Result<Vec<u8>> {
        if p == "-" {
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin(), &mut buf)?;
            Ok(buf)
        } else {
            std::fs::read(p)
        }
    };
    run_with_fs(args, &read, &mut |p, bytes| std::fs::write(p, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::BTreeMap;

    /// An in-memory filesystem for hermetic CLI tests.
    struct MemFs {
        files: RefCell<BTreeMap<String, Vec<u8>>>,
    }

    impl MemFs {
        fn new(files: &[(&str, &str)]) -> Self {
            MemFs {
                files: RefCell::new(
                    files
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.as_bytes().to_vec()))
                        .collect(),
                ),
            }
        }

        fn run(&self, args: &[&str]) -> Result<String, CliError> {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let read =
                |p: &str| -> std::io::Result<Vec<u8>> {
                    self.files.borrow().get(p).cloned().ok_or_else(|| {
                        std::io::Error::new(std::io::ErrorKind::NotFound, "not found")
                    })
                };
            let files = &self.files;
            let mut write = |p: &str, bytes: &[u8]| -> std::io::Result<()> {
                files.borrow_mut().insert(p.to_string(), bytes.to_vec());
                Ok(())
            };
            run_with_fs(&args, &read, &mut write)
        }
    }

    const MEDICAL: &str = "SurgicalTeam SubClassOf not ReadPatientRecordTeam
UrgencyTeam SubClassOf ReadPatientRecordTeam
john : SurgicalTeam
john : UrgencyTeam";

    #[test]
    fn check_reports_satisfiability() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs.run(&["check", "kb.dl4"]).unwrap();
        assert!(out.contains("satisfiable:  true"), "{out}");
        assert!(out.contains("axioms:       4"), "{out}");
    }

    #[test]
    fn query_gives_four_valued_answer() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs
            .run(&["query", "kb.dl4", "john", "ReadPatientRecordTeam"])
            .unwrap();
        assert!(out.contains('⊤'), "{out}");
        let out = fs.run(&["query", "kb.dl4", "john", "Patient"]).unwrap();
        assert!(out.contains('⊥'), "{out}");
    }

    #[test]
    fn report_lists_contested_facts() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs.run(&["report", "kb.dl4"]).unwrap();
        assert!(out.contains("⊤  john : ReadPatientRecordTeam"), "{out}");
        assert!(out.contains("contamination"), "{out}");
    }

    #[test]
    fn report_jobs_flag_gives_identical_output() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let plain = fs.run(&["report", "kb.dl4"]).unwrap();
        let threaded = fs.run(&["report", "kb.dl4", "--jobs", "3"]).unwrap();
        assert_eq!(plain, threaded);
        let classified = fs.run(&["classify", "kb.dl4", "--jobs", "2"]).unwrap();
        assert_eq!(classified, fs.run(&["classify", "kb.dl4"]).unwrap());
    }

    #[test]
    fn report_rejects_bad_jobs_values() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        for bad in [
            &["report", "kb.dl4", "--jobs", "0"][..],
            &["report", "kb.dl4", "--jobs", "many"][..],
            &["report", "kb.dl4", "--threads", "2"][..],
            &["report", "kb.dl4", "--stats", "extra"][..],
            &["classify", "kb.dl4", "--jobs"][..],
        ] {
            assert!(matches!(fs.run(bad), Err(CliError::Usage(_))), "{bad:?}");
        }
    }

    #[test]
    fn stats_flag_appends_search_counters() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let plain = fs.run(&["report", "kb.dl4"]).unwrap();
        assert!(!plain.contains("backjumps"), "{plain}");
        // Flags compose in either order.
        let with_stats = fs
            .run(&["report", "kb.dl4", "--stats", "--jobs", "2"])
            .unwrap();
        assert!(with_stats.starts_with(&plain), "{with_stats}");
        assert!(with_stats.contains("backjumps"), "{with_stats}");
        assert!(with_stats.contains("graph clones"), "{with_stats}");
        // The contested KB's survey closes branches: the per-kind clash
        // breakdown shows up with labels.
        assert!(with_stats.contains("clashes:"), "{with_stats}");
        let classified = fs.run(&["classify", "kb.dl4", "--stats"]).unwrap();
        assert!(classified.contains("branch depth"), "{classified}");
    }

    #[test]
    fn horn_counters_appear_only_when_the_fast_path_runs() {
        // A fully Horn KB: every routed query saturates instead of
        // searching, so `check` (which always prints the stats block)
        // surfaces the horn counters — and `--no-horn` restores the
        // historical tableau-only output byte-for-byte.
        const HORN: &str = "Doctor SubClassOf Person\nPerson SubClassOf Agent\nmeredith : Doctor";
        let fs = MemFs::new(&[("kb.dl4", HORN)]);
        let fast = fs.run(&["check", "kb.dl4"]).unwrap();
        assert!(fast.contains("horn:"), "{fast}");
        assert!(fast.contains("saturated queries"), "{fast}");
        assert!(fast.contains("0 fallbacks"), "{fast}");
        let slow = fs.run(&["check", "kb.dl4", "--no-horn"]).unwrap();
        assert!(!slow.contains("horn:"), "{slow}");
        assert!(slow.contains("satisfiable:  true"), "{slow}");
        // Routing is invisible in answers: the report bodies agree.
        assert_eq!(
            fs.run(&["report", "kb.dl4"]).unwrap(),
            fs.run(&["report", "kb.dl4", "--no-horn"]).unwrap()
        );
        // The contested medical KB forces non-Horn modules, so routed
        // queries are counted as fallbacks rather than saturations.
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let surveyed = fs.run(&["report", "kb.dl4", "--stats"]).unwrap();
        assert!(surveyed.contains("fallbacks"), "{surveyed}");
    }

    #[test]
    fn check_breaks_clashes_down_by_kind() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs.run(&["check", "kb.dl4"]).unwrap();
        assert!(out.contains("clashes:"), "{out}");
        assert!(out.contains("search:"), "{out}");
        // The default engine is the trail search: no whole-graph clones.
        assert!(out.contains("0 graph clones"), "{out}");
    }

    #[test]
    fn lint_reports_findings_human_readably() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs.run(&["lint", "kb.dl4"]).unwrap();
        // john is contested about ReadPatientRecordTeam through the told
        // chain — an OL003 error — and the summary line counts it.
        assert!(out.contains("error [OL003]"), "{out}");
        assert!(out.contains("ReadPatientRecordTeam"), "{out}");
        assert!(out.contains("1 errors"), "{out}");
    }

    #[test]
    fn lint_emits_machine_readable_json() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs.run(&["lint", "kb.dl4", "--format", "json"]).unwrap();
        let value = jsonio::Value::parse(&out).unwrap();
        let arr = value.as_array().unwrap();
        assert!(!arr.is_empty());
        assert_eq!(arr[0].get("rule").unwrap().as_str(), Some("OL003"));
        assert_eq!(
            arr[0].get("claim").unwrap().get("kind").unwrap().as_str(),
            Some("contested-concept")
        );
    }

    #[test]
    fn lint_rejects_unknown_format() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        assert!(matches!(
            fs.run(&["lint", "kb.dl4", "--format", "xml"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_prints_the_hardness_table() {
        // One disjunctive module (heavy) and one Horn chain (cheap).
        let fs = MemFs::new(&[(
            "kb.dl4",
            "A SubClassOf B or C\nx : A\nD SubClassOf E\ny : D",
        )]);
        let out = fs.run(&["analyze", "kb.dl4"]).unwrap();
        assert!(out.contains("axioms:        4"), "{out}");
        assert!(out.contains("modules:       2 (1 heavy"), "{out}");
        assert!(out.contains("heavy"), "{out}");
        assert!(out.contains("cheap"), "{out}");
        // A pure Horn KB reports no heavy modules.
        let fs = MemFs::new(&[("kb.dl4", "D SubClassOf E\ny : D")]);
        let out = fs.run(&["analyze", "kb.dl4"]).unwrap();
        assert!(out.contains("(0 heavy"), "{out}");
        // The unbounded ∃-cycle prints ∞ for its depth bound.
        let fs = MemFs::new(&[("kb.dl4", "A SubClassOf r some A\nx : A")]);
        let out = fs.run(&["analyze", "kb.dl4"]).unwrap();
        assert!(out.contains('∞'), "{out}");
    }

    #[test]
    fn analyze_emits_machine_readable_json() {
        let fs = MemFs::new(&[(
            "kb.dl4",
            "A SubClassOf B or C\nx : A\nD SubClassOf E\ny : D",
        )]);
        let out = fs.run(&["analyze", "kb.dl4", "--format", "json"]).unwrap();
        let v = jsonio::Value::parse(&out).unwrap();
        assert_eq!(v.get("axioms").unwrap().as_i64(), Some(4));
        assert_eq!(v.get("heavy_modules").unwrap().as_i64(), Some(1));
        assert!(v.get("max_score").unwrap().as_f64().unwrap() >= 8.0);
        let modules = v.get("modules").unwrap().as_array().unwrap();
        assert_eq!(modules.len(), 2);
        let lanes: Vec<&str> = modules
            .iter()
            .map(|m| m.get("lane").unwrap().as_str().unwrap())
            .collect();
        assert!(
            lanes.contains(&"heavy") && lanes.contains(&"cheap"),
            "{out}"
        );
        for m in modules {
            assert!(m.get("images").unwrap().as_i64().is_some());
            assert!(m.get("score").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn analyze_rejects_unknown_format() {
        let fs = MemFs::new(&[("kb.dl4", "x : A")]);
        assert!(matches!(
            fs.run(&["analyze", "kb.dl4", "--format", "xml"]),
            Err(CliError::Usage(_))
        ));
    }

    /// Two signature islands; the left one carries a direct contradiction.
    const ISLANDS: &str = "x : A
x : not A
A SubClassOf B
D SubClassOf E
y : D";

    #[test]
    fn modules_prints_the_dataflow_partition() {
        let fs = MemFs::new(&[("kb.dl4", ISLANDS)]);
        let out = fs.run(&["modules", "kb.dl4"]).unwrap();
        assert!(out.contains("axioms:        5"), "{out}");
        assert!(out.contains("components:    2 (sizes 3, 2)"), "{out}");
        assert!(out.contains("dead axioms:   none"), "{out}");
        // The contradiction seeds contaminate its island; the D/E
        // island stays clean.
        assert!(out.contains("contamination:"), "{out}");
        assert!(out.contains("2 clean"), "{out}");
        assert!(out.contains("module sizes:"), "{out}");
        // A clean KB reports no contamination at all.
        let fs = MemFs::new(&[("kb.dl4", "A SubClassOf B\nx : A")]);
        let out = fs.run(&["modules", "kb.dl4"]).unwrap();
        assert!(out.contains("contamination: none detected"), "{out}");
    }

    #[test]
    fn modules_emits_machine_readable_json() {
        let fs = MemFs::new(&[("kb.dl4", ISLANDS)]);
        let out = fs.run(&["modules", "kb.dl4", "--format", "json"]).unwrap();
        let v = jsonio::Value::parse(&out).unwrap();
        assert_eq!(v.get("axioms").unwrap().as_i64(), Some(5));
        assert_eq!(v.get("components").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("dead_axioms").unwrap().as_array().unwrap().is_empty());
        let cont = v.get("contamination").unwrap();
        assert_eq!(cont.get("clean").unwrap().as_array().unwrap().len(), 2);
        assert!(cont.get("max_radius").unwrap().as_i64().is_some());
        let modules = v.get("modules").unwrap().as_array().unwrap();
        // One entry per signature concept (A, B, D, E), sorted.
        assert_eq!(modules.len(), 4);
        assert_eq!(modules[0].get("concept").unwrap().as_str(), Some("A"));
        assert!(modules[0].get("module_size").unwrap().as_i64().unwrap() >= 1);
    }

    #[test]
    fn modules_rejects_unknown_format() {
        let fs = MemFs::new(&[("kb.dl4", ISLANDS)]);
        assert!(matches!(
            fs.run(&["modules", "kb.dl4", "--format", "xml"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn module_scoping_flag_preserves_output_and_reports_counters() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        // Scoped and unscoped runs must print identical reports …
        let plain = fs.run(&["report", "kb.dl4"]).unwrap();
        let scoped = fs.run(&["report", "kb.dl4", "--module-scoping"]).unwrap();
        assert_eq!(plain, scoped);
        let classified = fs.run(&["classify", "kb.dl4", "--module-scoping"]).unwrap();
        assert_eq!(classified, fs.run(&["classify", "kb.dl4"]).unwrap());
        // … and `check --module-scoping --no-horn` surfaces the module
        // counters (the Horn fast path sits in front of scoping, and on
        // this KB it settles satisfiability from the trivially Horn
        // ∅-seed module before the scoped tableau is consulted — so the
        // scoped counters need `--no-horn` to appear), while the
        // unscoped run keeps the historical stats block.
        let checked = fs
            .run(&["check", "kb.dl4", "--module-scoping", "--no-horn"])
            .unwrap();
        assert!(checked.contains("satisfiable:  true"), "{checked}");
        assert!(checked.contains("modules:"), "{checked}");
        assert!(checked.contains("scoped queries"), "{checked}");
        let fast = fs.run(&["check", "kb.dl4", "--module-scoping"]).unwrap();
        assert!(fast.contains("satisfiable:  true"), "{fast}");
        assert!(fast.contains("horn:"), "{fast}");
        let unscoped = fs.run(&["check", "kb.dl4", "--no-horn"]).unwrap();
        assert!(!unscoped.contains("modules:"), "{unscoped}");
    }

    #[test]
    fn transform_prints_induced_kb() {
        let fs = MemFs::new(&[("kb.dl4", MEDICAL)]);
        let out = fs.run(&["transform", "kb.dl4"]).unwrap();
        assert!(
            out.contains("SurgicalTeam+ SubClassOf ReadPatientRecordTeam-"),
            "{out}"
        );
    }

    #[test]
    fn classify_prints_taxonomy() {
        let fs = MemFs::new(&[(
            "kb.dl4",
            "Surgeon SubClassOf Doctor\nDoctor SubClassOf Person",
        )]);
        let out = fs.run(&["classify", "kb.dl4"]).unwrap();
        assert!(out.contains("Surgeon ⊏ Doctor, Person"), "{out}");
    }

    #[test]
    fn convert_round_trips_through_snapshot() {
        let fs = MemFs::new(&[("kb.dl", "A SubClassOf B\nx : A")]);
        let out = fs.run(&["convert", "kb.dl", "kb.dlkb"]).unwrap();
        assert!(out.contains("wrote kb.dlkb"), "{out}");
        let out = fs.run(&["convert", "kb.dlkb", "back.dl"]).unwrap();
        assert!(out.contains("2 axioms"), "{out}");
        let files = fs.files.borrow();
        let text = String::from_utf8(files["back.dl"].clone()).unwrap();
        assert!(text.contains("A SubClassOf B"));
        // And the snapshot can be loaded directly by `check`.
        drop(files);
        let out = fs.run(&["check", "kb.dlkb"]).unwrap();
        assert!(out.contains("satisfiable:  true"), "{out}");
    }

    #[test]
    fn table4_renders() {
        let fs = MemFs::new(&[]);
        let out = fs.run(&["table4"]).unwrap();
        assert!(out.contains("M1-M4"), "{out}");
        assert!(out.contains("M9"), "{out}");
    }

    const SESSION_SCRIPT: &str = "# build a little clinic
add Doctor SubClassOf Person
add meredith : Doctor
query meredith Person
add meredith : not Person
query meredith Person
retract meredith : not Person
query meredith Person
retract meredith : not Person
check";

    #[test]
    fn session_runs_a_mutation_script() {
        let fs = MemFs::new(&[("ops.txt", SESSION_SCRIPT)]);
        let out = fs.run(&["session", "--script", "ops.txt"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "added Doctor SubClassOf Person");
        assert_eq!(lines[2], "meredith : Person = t (information: yes)");
        assert!(lines[4].contains('⊤'), "{out}");
        assert_eq!(lines[6], "meredith : Person = t (information: yes)");
        assert_eq!(lines[7], "retract no-op meredith : not Person");
        assert_eq!(lines[8], "satisfiable: true");
        assert_eq!(lines[9], "axioms: 2");
    }

    #[test]
    fn session_stats_reports_cache_and_invalidation_counters() {
        let fs = MemFs::new(&[("ops.txt", SESSION_SCRIPT)]);
        let out = fs
            .run(&["session", "--script", "ops.txt", "--stats"])
            .unwrap();
        assert!(out.contains("caches:"), "{out}");
        assert!(out.contains("horn programs"), "{out}");
        assert!(out.contains("session:"), "{out}");
        assert!(out.contains("4 mutations"), "{out}");
        // The `--no-horn` session still answers identically up front.
        let slow = fs
            .run(&["session", "--script", "ops.txt", "--no-horn"])
            .unwrap();
        assert_eq!(fs.run(&["session", "--script", "ops.txt"]).unwrap(), slow);
        assert!(!slow.contains("horn:"), "{slow}");
    }

    #[test]
    fn session_reads_the_script_from_stdin_path() {
        let fs = MemFs::new(&[("-", "add x : A\nquery x A")]);
        let out = fs.run(&["session"]).unwrap();
        assert!(out.contains("x : A = t"), "{out}");
    }

    #[test]
    fn session_scripts_support_data_role_declarations() {
        let fs = MemFs::new(&[(
            "ops.txt",
            "DataRole: age\nadd age(pat, 41)\nquery pat Person",
        )]);
        let out = fs.run(&["session", "--script", "ops.txt"]).unwrap();
        assert!(out.contains("added age(pat, 41)"), "{out}");
        assert!(out.contains("axioms: 1"), "{out}");
    }

    #[test]
    fn session_rejects_bad_scripts_and_flags() {
        let fs = MemFs::new(&[("ops.txt", "frobnicate x : A")]);
        assert!(matches!(
            fs.run(&["session", "--script", "ops.txt"]),
            Err(CliError::Parse(_))
        ));
        let fs = MemFs::new(&[("ops.txt", "add A SubClassOf")]);
        let err = fs
            .run(&["session", "--script", "ops.txt"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("script line 1"), "{err}");
        let fs = MemFs::new(&[]);
        for bad in [
            &["session", "--script"][..],
            &["session", "--dir"][..],
            &["session", "--snapshot-every", "many"][..],
            &["session", "--bogus"][..],
        ] {
            assert!(matches!(fs.run(bad), Err(CliError::Usage(_))), "{bad:?}");
        }
    }

    #[test]
    fn durable_session_dir_persists_across_invocations() {
        let dir = std::env::temp_dir().join(format!("shoin4-cli-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap();
        let fs = MemFs::new(&[
            (
                "build.txt",
                "add Doctor SubClassOf Person\nadd meredith : Doctor",
            ),
            ("ask.txt", "query meredith Person"),
        ]);
        fs.run(&["session", "--script", "build.txt", "--dir", dir_s])
            .unwrap();
        let out = fs
            .run(&["session", "--script", "ask.txt", "--dir", dir_s])
            .unwrap();
        assert!(out.contains("meredith : Person = t"), "{out}");
        assert!(out.contains("axioms: 2"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let fs = MemFs::new(&[]);
        for bad in [
            &["serve"][..], // --listen is required
            &["serve", "--listen"][..],
            &["serve", "--listen", "127.0.0.1:0", "--workers", "0"][..],
            &["serve", "--listen", "127.0.0.1:0", "--queue-depth", "lots"][..],
            &["serve", "--listen", "127.0.0.1:0", "--budget-ms", "0"][..],
            &["serve", "--listen", "127.0.0.1:0", "--kb", "no-equals-sign"][..],
            &["serve", "--listen", "127.0.0.1:0", "--kb", "=path.dl4"][..],
            &["serve", "--listen", "127.0.0.1:0", "--serve-for-ms", "soon"][..],
            &["serve", "--listen", "127.0.0.1:0", "--heavy-workers", "0"][..],
            &["serve", "--listen", "127.0.0.1:0", "--heavy-queue-depth"][..],
            &["serve", "--listen", "127.0.0.1:0", "--heavy-budget-ms", "0"][..],
            &[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--hardness-threshold",
                "nan",
            ][..],
            &["serve", "--listen", "127.0.0.1:0", "--bogus"][..],
        ] {
            assert!(matches!(fs.run(bad), Err(CliError::Usage(_))), "{bad:?}");
        }
        assert!(matches!(
            fs.run(&["serve", "--listen", "127.0.0.1:0", "--kb", "t=missing.dl4"]),
            Err(CliError::Io(..))
        ));
    }

    #[test]
    fn serve_bounded_run_loads_kbs_and_reports_stats() {
        let fs = MemFs::new(&[("clinic.dl4", "john : Doctor\nDoctor SubClassOf Person")]);
        let out = fs
            .run(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--queue-depth",
                "8",
                "--budget-ms",
                "500",
                "--kb",
                "clinic=clinic.dl4",
                "--serve-for-ms",
                "50",
            ])
            .unwrap();
        assert!(out.contains("served on 127.0.0.1:"), "{out}");
        assert!(out.contains("admission:"), "{out}");
        assert!(out.contains("shared-cache:"), "{out}");
    }

    #[test]
    fn serve_lane_flags_enable_the_heavy_lane() {
        let fs = MemFs::new(&[("clinic.dl4", "john : Doctor\nDoctor SubClassOf Person")]);
        let out = fs
            .run(&[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--lanes",
                "--heavy-workers",
                "1",
                "--heavy-budget-ms",
                "250",
                "--hardness-threshold",
                "6.5",
                "--kb",
                "clinic=clinic.dl4",
                "--serve-for-ms",
                "50",
            ])
            .unwrap();
        // The lane counters surface in the admission JSON once lanes are
        // configured (all zero on an idle run, but the keys are there).
        assert!(out.contains("heavy_admitted"), "{out}");
        assert!(out.contains("cheap_admitted"), "{out}");
    }

    #[test]
    fn usage_on_bad_args() {
        let fs = MemFs::new(&[]);
        assert!(matches!(fs.run(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(fs.run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let fs = MemFs::new(&[]);
        assert!(matches!(
            fs.run(&["check", "nope.dl4"]),
            Err(CliError::Io(..))
        ));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let fs = MemFs::new(&[("bad.dl4", "A SubClassOf\n")]);
        let err = fs.run(&["check", "bad.dl4"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
