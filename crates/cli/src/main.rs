//! Binary entry point — all logic lives in the library (`shoin4_cli`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match shoin4_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
