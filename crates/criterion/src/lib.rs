//! A vendored, minimal stand-in for the `criterion` benchmark harness:
//! the same API shape (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`) with a simple
//! fixed-budget timing loop and plain-text reporting.
//!
//! It exists so the benchmark suite builds and runs offline with no
//! external dependencies; it makes no statistical claims beyond a mean
//! over a short measured window.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing context passed to benchmark closures.
pub struct Bencher {
    samples: u64,
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, first warming up, then averaging over a bounded
    /// number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        // Calibrate: aim for a measured window of ~50ms or `samples`
        // iterations, whichever is smaller in wall time.
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.samples.max(1) && start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.last_mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration budget for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run a benchmark by id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        println!("bench {}/{}: {:.1} ns/iter", self.name, id, b.last_mean_ns);
        self
    }

    /// Run a parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        println!("bench {}/{}: {:.1} ns/iter", self.name, id, b.last_mean_ns);
        self
    }

    /// Finish the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500u32), &500u32, |b, &n| {
            b.iter(|| (0..u64::from(n)).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("naive", 50).to_string(), "naive/50");
    }
}
