//! The four truth values of Belnap's logic `FOUR` and their operations.
//!
//! `FOUR = {t, f, ⊤, ⊥}` is the smallest non-trivial bilattice. Each value
//! is equivalently a pair of independent bits: *does the agent have
//! information that the statement is true?* and *…that it is false?*
//!
//! | value | written | true-info | false-info |
//! |-------|---------|-----------|------------|
//! | `True`    | `t` / `{t}`    | yes | no  |
//! | `False`   | `f` / `{f}`    | no  | yes |
//! | `Both`    | `⊤` / `{t,f}`  | yes | yes |
//! | `Neither` | `⊥` / `∅`      | no  | no  |
//!
//! Two partial orders structure `FOUR`:
//!
//! * the **truth order** `≤t`: `f ≤t ⊥ ≤t t` and `f ≤t ⊤ ≤t t`
//!   (⊥ and ⊤ are incomparable), whose meet/join are [`TruthValue::and`]
//!   and [`TruthValue::or`];
//! * the **knowledge order** `≤k`: `⊥ ≤k t ≤k ⊤` and `⊥ ≤k f ≤k ⊤`
//!   (t and f are incomparable), whose meet/join are
//!   [`TruthValue::consensus`] and [`TruthValue::accept_all`].
//!
//! The *designated* values — those counted as "the agent asserts it" for
//! the consequence relation `⊨4` — are `t` and `⊤`.

use std::fmt;

/// One of the four truth values of Belnap's logic.
///
/// The discriminants encode the `(true-info, false-info)` bit pair, which
/// makes the lattice operations cheap bit fiddling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TruthValue {
    /// `f`: information that the statement is false, none that it is true.
    False,
    /// `⊥` (Neither / Unknown): no information either way.
    Neither,
    /// `⊤` (Both / Contradiction): information both ways.
    Both,
    /// `t`: information that the statement is true, none that it is false.
    True,
}

impl TruthValue {
    /// All four values, in a fixed order convenient for exhaustive loops.
    pub const ALL: [TruthValue; 4] = [
        TruthValue::True,
        TruthValue::False,
        TruthValue::Both,
        TruthValue::Neither,
    ];

    /// Build a value from its `(true-info, false-info)` bit pair.
    #[inline]
    pub const fn from_bits(true_info: bool, false_info: bool) -> Self {
        match (true_info, false_info) {
            (true, false) => TruthValue::True,
            (false, true) => TruthValue::False,
            (true, true) => TruthValue::Both,
            (false, false) => TruthValue::Neither,
        }
    }

    /// Does the agent hold information supporting truth? (`t` or `⊤`)
    #[inline]
    pub const fn has_true_info(self) -> bool {
        matches!(self, TruthValue::True | TruthValue::Both)
    }

    /// Does the agent hold information supporting falsity? (`f` or `⊤`)
    #[inline]
    pub const fn has_false_info(self) -> bool {
        matches!(self, TruthValue::False | TruthValue::Both)
    }

    /// Membership in the designated set `{t, ⊤}` of `FOUR`.
    ///
    /// A formula *holds* in a four-valued model iff its value is designated.
    #[inline]
    pub const fn is_designated(self) -> bool {
        self.has_true_info()
    }

    /// Is this one of the two classical values `t`, `f`?
    #[inline]
    pub const fn is_classical(self) -> bool {
        matches!(self, TruthValue::True | TruthValue::False)
    }

    /// Negation on the truth direction: swaps the two information bits,
    /// so `¬⊤ = ⊤` and `¬⊥ = ⊥`.
    #[inline]
    pub const fn neg(self) -> Self {
        Self::from_bits(self.has_false_info(), self.has_true_info())
    }

    /// Meet in the truth order `≤t` (conjunction):
    /// `<P1,N1> ∧ <P2,N2> = <P1∩P2, N1∪N2>` at the bit level.
    #[inline]
    pub const fn and(self, other: Self) -> Self {
        Self::from_bits(
            self.has_true_info() && other.has_true_info(),
            self.has_false_info() || other.has_false_info(),
        )
    }

    /// Join in the truth order `≤t` (disjunction):
    /// `<P1,N1> ∨ <P2,N2> = <P1∪P2, N1∩N2>` at the bit level.
    #[inline]
    pub const fn or(self, other: Self) -> Self {
        Self::from_bits(
            self.has_true_info() || other.has_true_info(),
            self.has_false_info() && other.has_false_info(),
        )
    }

    /// Meet in the knowledge order `≤k` (the *consensus* operator `⊗`):
    /// keeps only information both sources agree on.
    #[inline]
    pub const fn consensus(self, other: Self) -> Self {
        Self::from_bits(
            self.has_true_info() && other.has_true_info(),
            self.has_false_info() && other.has_false_info(),
        )
    }

    /// Join in the knowledge order `≤k` (the *gullibility* operator `⊕`):
    /// accepts information from either source.
    #[inline]
    pub const fn accept_all(self, other: Self) -> Self {
        Self::from_bits(
            self.has_true_info() || other.has_true_info(),
            self.has_false_info() || other.has_false_info(),
        )
    }

    /// The truth partial order `≤t`: more false-info below, more
    /// true-info above. `a ≤t b` iff `P_a ⊆ P_b` and `N_b ⊆ N_a`.
    #[inline]
    pub const fn le_t(self, other: Self) -> bool {
        (!self.has_true_info() || other.has_true_info())
            && (!other.has_false_info() || self.has_false_info())
    }

    /// The knowledge partial order `≤k`: `a ≤k b` iff `b` carries at least
    /// the information of `a` in both directions.
    #[inline]
    pub const fn le_k(self, other: Self) -> bool {
        (!self.has_true_info() || other.has_true_info())
            && (!self.has_false_info() || other.has_false_info())
    }

    /// Material implication `φ ↦ ψ  ≝  ¬φ ∨ ψ`.
    ///
    /// Tolerates exceptions: `⊤ ↦ f = ⊤`, which is designated even though
    /// the conclusion is not true.
    #[inline]
    pub const fn material_imp(self, other: Self) -> Self {
        self.neg().or(other)
    }

    /// Internal implication `⊃` — the residuum of `∧` w.r.t. the designated
    /// set; the implication for which the four-valued deduction theorem
    /// (Proposition 1 of the paper) holds:
    ///
    /// `φ ⊃ ψ = ψ` if `φ ∈ {t,⊤}`, else `t`.
    #[inline]
    pub const fn internal_imp(self, other: Self) -> Self {
        if self.is_designated() {
            other
        } else {
            TruthValue::True
        }
    }

    /// Strong implication `φ → ψ ≝ (φ ⊃ ψ) ∧ (¬ψ ⊃ ¬φ)`: contraposable and
    /// exception-free.
    #[inline]
    pub const fn strong_imp(self, other: Self) -> Self {
        self.internal_imp(other)
            .and(other.neg().internal_imp(self.neg()))
    }

    /// Strong equivalence `φ ↔ ψ ≝ (φ → ψ) ∧ (ψ → φ)` — the congruence
    /// relation of Proposition 2.
    #[inline]
    pub const fn strong_iff(self, other: Self) -> Self {
        self.strong_imp(other).and(other.strong_imp(self))
    }

    /// Collapse to a classical Boolean by designation (`t`,`⊤` ↦ true).
    #[inline]
    pub const fn to_classical(self) -> bool {
        self.is_designated()
    }

    /// Lift a classical Boolean into `FOUR`.
    #[inline]
    pub const fn from_classical(b: bool) -> Self {
        if b {
            TruthValue::True
        } else {
            TruthValue::False
        }
    }
}

impl fmt::Display for TruthValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TruthValue::True => "t",
            TruthValue::False => "f",
            TruthValue::Both => "⊤",
            TruthValue::Neither => "⊥",
        };
        f.write_str(s)
    }
}

impl std::ops::Not for TruthValue {
    type Output = TruthValue;
    fn not(self) -> TruthValue {
        self.neg()
    }
}

impl std::ops::BitAnd for TruthValue {
    type Output = TruthValue;
    fn bitand(self, rhs: TruthValue) -> TruthValue {
        self.and(rhs)
    }
}

impl std::ops::BitOr for TruthValue {
    type Output = TruthValue;
    fn bitor(self, rhs: TruthValue) -> TruthValue {
        self.or(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::TruthValue::{self, *};

    #[test]
    fn bit_roundtrip() {
        for v in TruthValue::ALL {
            assert_eq!(
                TruthValue::from_bits(v.has_true_info(), v.has_false_info()),
                v
            );
        }
    }

    #[test]
    fn negation_table() {
        assert_eq!(True.neg(), False);
        assert_eq!(False.neg(), True);
        assert_eq!(Both.neg(), Both);
        assert_eq!(Neither.neg(), Neither);
    }

    #[test]
    fn negation_is_involution() {
        for v in TruthValue::ALL {
            assert_eq!(v.neg().neg(), v);
        }
    }

    #[test]
    fn conjunction_table_classical_fragment() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(False.and(False), False);
    }

    #[test]
    fn conjunction_with_both_and_neither() {
        assert_eq!(Both.and(True), Both);
        assert_eq!(Both.and(False), False);
        assert_eq!(Both.and(Neither), False);
        assert_eq!(Neither.and(True), Neither);
        assert_eq!(Neither.and(False), False);
        assert_eq!(Both.and(Both), Both);
        assert_eq!(Neither.and(Neither), Neither);
    }

    #[test]
    fn disjunction_dual_of_conjunction() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                assert_eq!(a.or(b), a.neg().and(b.neg()).neg(), "{a} {b}");
            }
        }
    }

    #[test]
    fn truth_order_hasse_diagram() {
        assert!(False.le_t(Neither) && Neither.le_t(True));
        assert!(False.le_t(Both) && Both.le_t(True));
        assert!(!Neither.le_t(Both) && !Both.le_t(Neither));
        for v in TruthValue::ALL {
            assert!(v.le_t(v));
            assert!(False.le_t(v) && v.le_t(True));
        }
    }

    #[test]
    fn knowledge_order_hasse_diagram() {
        assert!(Neither.le_k(True) && True.le_k(Both));
        assert!(Neither.le_k(False) && False.le_k(Both));
        assert!(!True.le_k(False) && !False.le_k(True));
        for v in TruthValue::ALL {
            assert!(v.le_k(v));
            assert!(Neither.le_k(v) && v.le_k(Both));
        }
    }

    #[test]
    fn and_is_truth_meet_or_is_truth_join() {
        // Meet/join characterization: a∧b is the greatest lower bound in ≤t.
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                let m = a.and(b);
                assert!(m.le_t(a) && m.le_t(b));
                for c in TruthValue::ALL {
                    if c.le_t(a) && c.le_t(b) {
                        assert!(c.le_t(m));
                    }
                }
                let j = a.or(b);
                assert!(a.le_t(j) && b.le_t(j));
                for c in TruthValue::ALL {
                    if a.le_t(c) && b.le_t(c) {
                        assert!(j.le_t(c));
                    }
                }
            }
        }
    }

    #[test]
    fn consensus_and_gullibility_are_knowledge_meet_join() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                let m = a.consensus(b);
                assert!(m.le_k(a) && m.le_k(b));
                let j = a.accept_all(b);
                assert!(a.le_k(j) && b.le_k(j));
            }
        }
    }

    #[test]
    fn negation_monotone_in_knowledge_antitone_in_truth() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                if a.le_k(b) {
                    assert!(a.neg().le_k(b.neg()));
                }
                if a.le_t(b) {
                    assert!(b.neg().le_t(a.neg()));
                }
            }
        }
    }

    #[test]
    fn material_implication_tolerates_exceptions() {
        // ⊤ ↦ f is designated: the contradiction in the premise excuses a
        // false conclusion (the paper's "exception" reading).
        assert!(Both.material_imp(False).is_designated());
        assert!(Both.material_imp(Neither).is_designated());
    }

    #[test]
    fn internal_implication_truth_table() {
        for b in TruthValue::ALL {
            assert_eq!(True.internal_imp(b), b);
            assert_eq!(Both.internal_imp(b), b);
            assert_eq!(False.internal_imp(b), True);
            assert_eq!(Neither.internal_imp(b), True);
        }
    }

    #[test]
    fn internal_implication_never_excuses_untruth() {
        // If the premise is designated and φ⊃ψ is designated, ψ is designated.
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                if a.is_designated() && a.internal_imp(b).is_designated() {
                    assert!(b.is_designated());
                }
            }
        }
    }

    #[test]
    fn strong_implication_contraposes() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                assert_eq!(a.strong_imp(b), b.neg().strong_imp(a.neg()));
            }
        }
    }

    #[test]
    fn strong_implies_internal() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                if a.strong_imp(b).is_designated() {
                    assert!(a.internal_imp(b).is_designated());
                }
            }
        }
    }

    #[test]
    fn strong_iff_designated_means_same_projections() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                // φ↔ψ designated iff same true-info and same false-info,
                // except it also tolerates ⊥/⊥ and ⊤/⊤ trivially — verify
                // directly against the definition.
                let direct = a.strong_imp(b).and(b.strong_imp(a));
                assert_eq!(a.strong_iff(b), direct);
            }
        }
    }

    #[test]
    fn classical_embedding_is_faithful() {
        for x in [true, false] {
            assert_eq!(TruthValue::from_classical(x).to_classical(), x);
        }
        for x in [true, false] {
            for y in [true, false] {
                let (a, b) = (TruthValue::from_classical(x), TruthValue::from_classical(y));
                assert_eq!(a.and(b).to_classical(), x && y);
                assert_eq!(a.or(b).to_classical(), x || y);
                assert_eq!(a.neg().to_classical(), !x);
            }
        }
    }

    #[test]
    fn operator_overloads_match_methods() {
        for a in TruthValue::ALL {
            assert_eq!(!a, a.neg());
            for b in TruthValue::ALL {
                assert_eq!(a & b, a.and(b));
                assert_eq!(a | b, a.or(b));
            }
        }
    }

    #[test]
    fn display_uses_paper_symbols() {
        assert_eq!(True.to_string(), "t");
        assert_eq!(False.to_string(), "f");
        assert_eq!(Both.to_string(), "⊤");
        assert_eq!(Neither.to_string(), "⊥");
    }
}
