//! The *signed transformation*: reducing four-valued propositional
//! reasoning to classical propositional reasoning — the propositional
//! ancestor (Arieli & Denecker; Yue, Ma & Lin — the paper's refs
//! [15–17]) of the SHOIN(D)4 → SHOIN(D) reduction.
//!
//! Each atom `p` splits into two classical atoms `p⁺` ("there is
//! information that p") and `p⁻` ("…that ¬p"). A four-valued formula `φ`
//! maps to a classical formula `pos(φ)` that holds exactly when `φ` is
//! *designated*, and `neg(φ)` that holds exactly when `φ` carries
//! false-information:
//!
//! ```text
//! pos(p) = p⁺              neg(p) = p⁻
//! pos(¬φ) = neg(φ)         neg(¬φ) = pos(φ)
//! pos(φ∧ψ) = pos φ ∧ pos ψ neg(φ∧ψ) = neg φ ∨ neg ψ
//! pos(φ∨ψ) = pos φ ∨ pos ψ neg(φ∨ψ) = neg φ ∧ neg ψ
//! pos(φ↦ψ) = neg φ ∨ pos ψ neg(φ↦ψ) = pos φ ∧ neg ψ
//! pos(φ⊃ψ) = ¬pos φ ∨ pos ψ  neg(φ⊃ψ) = pos φ ∧ neg ψ
//! φ→ψ and φ↔ψ expand by definition.
//! ```
//!
//! Then `Γ ⊨4 φ` iff `{pos(γ)}_γ ∪ {¬pos(φ)}` is classically
//! **unsatisfiable** — decided here by [`sat::Solver`], a small DPLL
//! solver with unit propagation and pure-literal elimination over a
//! Tseitin-style clausification.

use crate::prop::{Atom, Formula};
use std::collections::BTreeMap;
use std::fmt;

/// A classical propositional formula over signed atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CFormula {
    /// A (signed) atom such as `p⁺`.
    Atom(String),
    /// Constant truth value.
    Const(bool),
    /// Classical negation.
    Not(Box<CFormula>),
    /// Classical conjunction.
    And(Box<CFormula>, Box<CFormula>),
    /// Classical disjunction.
    Or(Box<CFormula>, Box<CFormula>),
}

impl CFormula {
    /// An atom.
    pub fn atom(s: impl Into<String>) -> Self {
        CFormula::Atom(s.into())
    }

    /// `¬self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        CFormula::Not(Box::new(self))
    }

    /// `self ∧ rhs`
    pub fn and(self, rhs: CFormula) -> Self {
        CFormula::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`
    pub fn or(self, rhs: CFormula) -> Self {
        CFormula::Or(Box::new(self), Box::new(rhs))
    }

    /// Evaluate under a (total) classical assignment; missing atoms read
    /// as `false`.
    pub fn eval(&self, assignment: &BTreeMap<String, bool>) -> bool {
        match self {
            CFormula::Atom(a) => assignment.get(a).copied().unwrap_or(false),
            CFormula::Const(b) => *b,
            CFormula::Not(f) => !f.eval(assignment),
            CFormula::And(l, r) => l.eval(assignment) && r.eval(assignment),
            CFormula::Or(l, r) => l.eval(assignment) || r.eval(assignment),
        }
    }
}

impl fmt::Display for CFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CFormula::Atom(a) => write!(f, "{a}"),
            CFormula::Const(b) => write!(f, "{b}"),
            CFormula::Not(x) => write!(f, "¬{x}"),
            CFormula::And(l, r) => write!(f, "({l} ∧ {r})"),
            CFormula::Or(l, r) => write!(f, "({l} ∨ {r})"),
        }
    }
}

fn pos_name(a: &Atom) -> String {
    format!("{a}+")
}
fn neg_name(a: &Atom) -> String {
    format!("{a}-")
}

/// `pos(φ)` — classically true iff `φ` is designated.
pub fn positive(f: &Formula) -> CFormula {
    match f {
        Formula::Atom(a) => CFormula::atom(pos_name(a)),
        Formula::Const(v) => CFormula::Const(v.has_true_info()),
        Formula::Not(g) => negative(g),
        Formula::And(l, r) => positive(l).and(positive(r)),
        Formula::Or(l, r) => positive(l).or(positive(r)),
        Formula::MaterialImp(l, r) => negative(l).or(positive(r)),
        Formula::InternalImp(l, r) => positive(l).not().or(positive(r)),
        // φ→ψ ≝ (φ⊃ψ)∧(¬ψ⊃¬φ)
        Formula::StrongImp(l, r) => positive(l)
            .not()
            .or(positive(r))
            .and(negative(r).not().or(negative(l))),
        Formula::StrongIff(l, r) => {
            let fwd = Formula::StrongImp(l.clone(), r.clone());
            let bwd = Formula::StrongImp(r.clone(), l.clone());
            positive(&fwd).and(positive(&bwd))
        }
        // ⊗/⊕ act bitwise on the information pairs.
        Formula::Consensus(l, r) => positive(l).and(positive(r)),
        Formula::Gullibility(l, r) => positive(l).or(positive(r)),
    }
}

/// `neg(φ)` — classically true iff `φ` carries false-information.
pub fn negative(f: &Formula) -> CFormula {
    match f {
        Formula::Atom(a) => CFormula::atom(neg_name(a)),
        Formula::Const(v) => CFormula::Const(v.has_false_info()),
        Formula::Not(g) => positive(g),
        Formula::And(l, r) => negative(l).or(negative(r)),
        Formula::Or(l, r) => negative(l).and(negative(r)),
        Formula::MaterialImp(l, r) => positive(l).and(negative(r)),
        // v(φ⊃ψ) = ψ if φ designated else t: false-info iff des(φ) ∧ neg(ψ).
        Formula::InternalImp(l, r) => positive(l).and(negative(r)),
        // v(φ→ψ) = (φ⊃ψ) ∧ (¬ψ⊃¬φ): false-info iff either conjunct has
        // it. neg(φ⊃ψ) = pos(φ)∧neg(ψ); neg(¬ψ⊃¬φ) = pos(¬ψ)∧neg(¬φ)
        // = neg(ψ)∧pos(φ) — the same condition, so one conjunct suffices.
        Formula::StrongImp(l, r) => positive(l).and(negative(r)),
        Formula::StrongIff(l, r) => {
            let fwd = Formula::StrongImp(l.clone(), r.clone());
            let bwd = Formula::StrongImp(r.clone(), l.clone());
            negative(&fwd).or(negative(&bwd))
        }
        Formula::Consensus(l, r) => negative(l).and(negative(r)),
        Formula::Gullibility(l, r) => negative(l).or(negative(r)),
    }
}

/// `Γ ⊨4 φ` via the signed reduction + DPLL: the premises' positive
/// images plus the negated positive image of the conclusion must be
/// unsatisfiable.
pub fn entails4_signed(premises: &[Formula], conclusion: &Formula) -> bool {
    let mut clauses = sat::Clausifier::new();
    for p in premises {
        clauses.assert_true(&positive(p));
    }
    clauses.assert_true(&positive(conclusion).not());
    !sat::Solver::new(clauses.into_clauses()).satisfiable()
}

/// A minimal CNF + DPLL SAT layer.
pub mod sat {
    use super::CFormula;
    use std::collections::{BTreeMap, BTreeSet};

    /// A literal: variable index with sign.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub struct Lit {
        /// Variable index.
        pub var: u32,
        /// `true` = positive occurrence.
        pub positive: bool,
    }

    impl Lit {
        /// The complementary literal.
        pub fn negated(self) -> Lit {
            Lit {
                var: self.var,
                positive: !self.positive,
            }
        }
    }

    /// Tseitin-style clausifier: converts [`CFormula`]s to CNF with one
    /// auxiliary variable per compound subformula.
    #[derive(Debug, Default)]
    pub struct Clausifier {
        vars: BTreeMap<String, u32>,
        next: u32,
        clauses: Vec<Vec<Lit>>,
    }

    impl Clausifier {
        /// Fresh clausifier.
        pub fn new() -> Self {
            Self::default()
        }

        fn var_for(&mut self, name: &str) -> u32 {
            if let Some(&v) = self.vars.get(name) {
                return v;
            }
            let v = self.next;
            self.next += 1;
            self.vars.insert(name.to_string(), v);
            v
        }

        fn fresh(&mut self) -> u32 {
            let v = self.next;
            self.next += 1;
            v
        }

        /// Add clauses asserting the formula true.
        pub fn assert_true(&mut self, f: &CFormula) {
            let lit = self.encode(f);
            self.clauses.push(vec![lit]);
        }

        /// Encode a formula, returning a literal equisatisfiably
        /// representing it.
        fn encode(&mut self, f: &CFormula) -> Lit {
            match f {
                CFormula::Atom(a) => Lit {
                    var: self.var_for(a),
                    positive: true,
                },
                CFormula::Const(true) => {
                    // A fresh always-true variable.
                    let v = self.fresh();
                    self.clauses.push(vec![Lit {
                        var: v,
                        positive: true,
                    }]);
                    Lit {
                        var: v,
                        positive: true,
                    }
                }
                CFormula::Const(false) => {
                    let v = self.fresh();
                    self.clauses.push(vec![Lit {
                        var: v,
                        positive: false,
                    }]);
                    Lit {
                        var: v,
                        positive: true,
                    }
                }
                CFormula::Not(g) => self.encode(g).negated(),
                CFormula::And(l, r) => {
                    let (a, b) = (self.encode(l), self.encode(r));
                    let v = self.fresh();
                    let out = Lit {
                        var: v,
                        positive: true,
                    };
                    // v ↔ a∧b
                    self.clauses.push(vec![out.negated(), a]);
                    self.clauses.push(vec![out.negated(), b]);
                    self.clauses.push(vec![a.negated(), b.negated(), out]);
                    out
                }
                CFormula::Or(l, r) => {
                    let (a, b) = (self.encode(l), self.encode(r));
                    let v = self.fresh();
                    let out = Lit {
                        var: v,
                        positive: true,
                    };
                    // v ↔ a∨b
                    self.clauses.push(vec![out.negated(), a, b]);
                    self.clauses.push(vec![a.negated(), out]);
                    self.clauses.push(vec![b.negated(), out]);
                    out
                }
            }
        }

        /// Finish, yielding the clause set.
        pub fn into_clauses(self) -> Vec<Vec<Lit>> {
            self.clauses
        }
    }

    /// DPLL with unit propagation and pure-literal elimination.
    #[derive(Debug)]
    pub struct Solver {
        clauses: Vec<Vec<Lit>>,
    }

    impl Solver {
        /// Wrap a clause set.
        pub fn new(clauses: Vec<Vec<Lit>>) -> Self {
            Solver { clauses }
        }

        /// Is the clause set satisfiable?
        pub fn satisfiable(&self) -> bool {
            Self::dpll(self.clauses.clone())
        }

        fn dpll(mut clauses: Vec<Vec<Lit>>) -> bool {
            loop {
                // Unit propagation.
                let unit = clauses.iter().find(|c| c.len() == 1).map(|c| c[0]);
                if let Some(lit) = unit {
                    if !Self::assign(&mut clauses, lit) {
                        return false;
                    }
                    continue;
                }
                // Pure literals.
                let mut polarity: BTreeMap<u32, BTreeSet<bool>> = BTreeMap::new();
                for c in &clauses {
                    for l in c {
                        polarity.entry(l.var).or_default().insert(l.positive);
                    }
                }
                let pure = polarity
                    .iter()
                    .find(|(_, pols)| pols.len() == 1)
                    .map(|(&var, pols)| Lit {
                        var,
                        positive: *pols.iter().next().expect("non-empty"),
                    });
                if let Some(lit) = pure {
                    if !Self::assign(&mut clauses, lit) {
                        return false;
                    }
                    continue;
                }
                break;
            }
            if clauses.is_empty() {
                return true;
            }
            if clauses.iter().any(Vec::is_empty) {
                return false;
            }
            // Branch on the first literal of the shortest clause.
            let lit = *clauses
                .iter()
                .min_by_key(|c| c.len())
                .and_then(|c| c.first())
                .expect("non-empty clause set");
            for choice in [lit, lit.negated()] {
                let mut branch = clauses.clone();
                if Self::assign(&mut branch, choice) && Self::dpll(branch) {
                    return true;
                }
            }
            false
        }

        /// Apply an assignment; returns false on an immediate empty
        /// clause.
        fn assign(clauses: &mut Vec<Vec<Lit>>, lit: Lit) -> bool {
            clauses.retain(|c| !c.contains(&lit));
            for c in clauses.iter_mut() {
                c.retain(|l| *l != lit.negated());
            }
            !clauses.iter().any(Vec::is_empty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consequence::entails4;
    use crate::TruthValue;

    fn atom(s: &str) -> Formula {
        Formula::atom(s)
    }

    #[test]
    fn signed_images_of_atoms() {
        let p = atom("p");
        assert_eq!(positive(&p), CFormula::atom("p+"));
        assert_eq!(negative(&p), CFormula::atom("p-"));
        assert_eq!(positive(&p.clone().not()), CFormula::atom("p-"));
        assert_eq!(negative(&p.not()), CFormula::atom("p+"));
    }

    #[test]
    fn signed_semantics_match_fourval_semantics() {
        // For every valuation v of {p, q}, pos(φ) under the induced
        // signed assignment equals "φ designated under v" — exhaustive.
        use crate::valuation::AllValuations;
        let formulas = [
            atom("p").and(atom("q")),
            atom("p").or(atom("q").not()),
            atom("p").material_imp(atom("q")),
            atom("p").internal_imp(atom("q")),
            atom("p").strong_imp(atom("q")),
            atom("p").strong_iff(atom("q")),
            atom("p").not().not().and(atom("p")),
        ];
        let atoms = [Atom::from("p"), Atom::from("q")];
        for v in AllValuations::new(atoms) {
            let mut signed = BTreeMap::new();
            for (a, tv) in v.iter() {
                signed.insert(format!("{a}+"), tv.has_true_info());
                signed.insert(format!("{a}-"), tv.has_false_info());
            }
            for f in &formulas {
                let tv = f.eval(&v);
                assert_eq!(
                    positive(f).eval(&signed),
                    tv.is_designated(),
                    "pos({f}) wrong under {v}"
                );
                assert_eq!(
                    negative(f).eval(&signed),
                    tv.has_false_info(),
                    "neg({f}) wrong under {v}"
                );
            }
        }
    }

    #[test]
    fn signed_entailment_matches_enumeration() {
        let cases: Vec<(Vec<Formula>, Formula)> = vec![
            (vec![atom("p"), atom("p").not()], atom("q")),
            (vec![atom("p"), atom("p").not()], atom("p")),
            (vec![atom("p").and(atom("q"))], atom("q")),
            (vec![atom("p")], atom("p").or(atom("q"))),
            (vec![atom("p").or(atom("q")), atom("p").not()], atom("q")),
            (
                vec![atom("p"), atom("p").internal_imp(atom("q"))],
                atom("q"),
            ),
            (
                vec![atom("p"), atom("p").material_imp(atom("q"))],
                atom("q"),
            ),
            (vec![], atom("p").internal_imp(atom("p"))),
            (vec![], atom("p").or(atom("p").not())),
            (
                vec![atom("p").strong_imp(atom("q")), atom("q").not()],
                atom("p").not(),
            ),
        ];
        for (premises, conclusion) in cases {
            assert_eq!(
                entails4_signed(&premises, &conclusion),
                entails4(&premises, &conclusion),
                "mismatch on Γ={premises:?} φ={conclusion}"
            );
        }
    }

    #[test]
    fn dpll_basics() {
        use sat::{Clausifier, Solver};
        // p ∧ ¬p unsat; p ∨ q sat.
        let mut c = Clausifier::new();
        c.assert_true(&CFormula::atom("p"));
        c.assert_true(&CFormula::atom("p").not());
        assert!(!Solver::new(c.into_clauses()).satisfiable());
        let mut c = Clausifier::new();
        c.assert_true(&CFormula::atom("p").or(CFormula::atom("q")));
        assert!(Solver::new(c.into_clauses()).satisfiable());
    }

    #[test]
    fn dpll_pigeonhole_2_into_1() {
        use sat::{Clausifier, Solver};
        // Two pigeons, one hole: x1 ∧ x2 ∧ ¬(x1∧x2) — unsat.
        let mut c = Clausifier::new();
        c.assert_true(&CFormula::atom("x1"));
        c.assert_true(&CFormula::atom("x2"));
        c.assert_true(&CFormula::atom("x1").and(CFormula::atom("x2")).not());
        assert!(!Solver::new(c.into_clauses()).satisfiable());
    }

    #[test]
    fn constants_encode_correctly() {
        let t = Formula::constant(TruthValue::Both);
        assert_eq!(positive(&t), CFormula::Const(true));
        assert_eq!(negative(&t), CFormula::Const(true));
        let n = Formula::constant(TruthValue::Neither);
        assert_eq!(positive(&n), CFormula::Const(false));
        assert_eq!(negative(&n), CFormula::Const(false));
    }
}
