//! The four-valued consequence relation `⊨4` by exhaustive model search.
//!
//! `Γ ⊨4 φ` holds iff every four-valued valuation that designates all of `Γ`
//! also designates `φ`. This is the relation against which Proposition 1
//! (the deduction theorem for internal implication) and its counterexamples
//! for material and strong implication are stated.
//!
//! Enumeration costs `4^n` in the number of atoms, so this module is a
//! *specification oracle*: the DL layer never calls it on large inputs, but
//! the test suite uses it heavily to cross-check the reduction machinery.

use crate::prop::{Atom, Formula};
use crate::valuation::AllValuations;
use std::collections::BTreeSet;

/// Upper bound on distinct atoms accepted by the exhaustive checker.
/// `4^12 ≈ 16.7M` valuations is the most we allow a single query to scan.
pub const MAX_ATOMS: usize = 12;

fn combined_atoms(premises: &[Formula], conclusion: &Formula) -> BTreeSet<Atom> {
    let mut atoms = conclusion.atoms();
    for p in premises {
        atoms.extend(p.atoms());
    }
    atoms
}

/// Does `Γ ⊨4 φ` hold? Panics if the combined atom count exceeds
/// [`MAX_ATOMS`] — callers control their inputs, and silently wrong answers
/// would be worse than a loud failure.
pub fn entails4(premises: &[Formula], conclusion: &Formula) -> bool {
    let atoms = combined_atoms(premises, conclusion);
    assert!(
        atoms.len() <= MAX_ATOMS,
        "entails4: {} atoms exceeds the exhaustive-checker limit of {MAX_ATOMS}",
        atoms.len()
    );
    AllValuations::new(atoms).all(|v| {
        premises.iter().any(|p| !p.eval(&v).is_designated()) || conclusion.eval(&v).is_designated()
    })
}

/// `Γ ⊨4 φᵢ` for every conclusion.
pub fn entails4_all(premises: &[Formula], conclusions: &[Formula]) -> bool {
    conclusions.iter().all(|c| entails4(premises, c))
}

/// Four-valued logical equivalence: same truth value under *every*
/// valuation (stronger than mutual entailment).
pub fn equivalent4(a: &Formula, b: &Formula) -> bool {
    let atoms = combined_atoms(std::slice::from_ref(a), b);
    assert!(
        atoms.len() <= MAX_ATOMS,
        "equivalent4: {} atoms exceeds the exhaustive-checker limit of {MAX_ATOMS}",
        atoms.len()
    );
    AllValuations::new(atoms).all(|v| a.eval(&v) == b.eval(&v))
}

/// Is `φ` a four-valued tautology (designated in every valuation)?
pub fn tautology4(f: &Formula) -> bool {
    entails4(&[], f)
}

/// Find one valuation designating all of `Γ` but not `φ`, if any — the
/// witness used by tests and error messages.
pub fn countermodel(
    premises: &[Formula],
    conclusion: &Formula,
) -> Option<crate::valuation::Valuation> {
    let atoms = combined_atoms(premises, conclusion);
    assert!(atoms.len() <= MAX_ATOMS);
    AllValuations::new(atoms).find(|v| {
        premises.iter().all(|p| p.eval(v).is_designated()) && !conclusion.eval(v).is_designated()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str) -> Formula {
        Formula::atom(s)
    }

    #[test]
    fn no_explosion_from_contradiction() {
        // The headline paraconsistency property: {p, ¬p} ⊭4 q.
        let p = atom("p");
        let q = atom("q");
        assert!(!entails4(&[p.clone(), p.clone().not()], &q));
        assert!(entails4(&[p.clone(), p.clone().not()], &p));
    }

    #[test]
    fn conjunction_elimination_and_introduction() {
        let (p, q) = (atom("p"), atom("q"));
        let conj = p.clone().and(q.clone());
        assert!(entails4(std::slice::from_ref(&conj), &p));
        assert!(entails4(std::slice::from_ref(&conj), &q));
        assert!(entails4(&[p, q], &conj));
    }

    #[test]
    fn disjunction_introduction() {
        let (p, q) = (atom("p"), atom("q"));
        assert!(entails4(std::slice::from_ref(&p), &p.clone().or(q)));
    }

    #[test]
    fn disjunctive_syllogism_fails_in_four() {
        // A classical law famously invalid in Belnap logic: {p∨q, ¬p} ⊭4 q.
        let (p, q) = (atom("p"), atom("q"));
        assert!(!entails4(&[p.clone().or(q.clone()), p.not()], &q));
    }

    #[test]
    fn proposition_1_deduction_theorem_for_internal_imp() {
        // Γ,ψ ⊨4 φ iff Γ ⊨4 ψ ⊃ φ — spot-check on several (Γ, ψ, φ).
        let cases: Vec<(Vec<Formula>, Formula, Formula)> = vec![
            (vec![], atom("p"), atom("p")),
            (vec![atom("r")], atom("p"), atom("p").or(atom("r"))),
            (vec![atom("p")], atom("q"), atom("p").and(atom("q"))),
            (vec![atom("p").not()], atom("p"), atom("q")),
        ];
        for (gamma, psi, phi) in cases {
            let mut with_psi = gamma.clone();
            with_psi.push(psi.clone());
            let lhs = entails4(&with_psi, &phi);
            let rhs = entails4(&gamma, &psi.internal_imp(phi.clone()));
            assert_eq!(lhs, rhs, "deduction theorem failed for φ={phi}");
        }
    }

    #[test]
    fn proposition_1_modus_ponens_for_internal_imp() {
        // If Γ ⊨4 ψ and Γ ⊨4 ψ⊃φ then Γ ⊨4 φ — verified semantically:
        // whenever ψ and ψ⊃φ are designated, φ is designated.
        let (psi, phi) = (atom("p"), atom("q"));
        let imp = psi.clone().internal_imp(phi.clone());
        assert!(entails4(&[psi, imp], &phi));
    }

    #[test]
    fn proposition_1_counterexample_material() {
        // {ψ, ¬ψ, ¬φ} ⊨4 ψ↦φ but {ψ, ¬ψ, ¬φ} ⊭4 φ.
        let (psi, phi) = (atom("p"), atom("q"));
        let gamma = vec![psi.clone(), psi.clone().not(), phi.clone().not()];
        assert!(entails4(&gamma, &psi.material_imp(phi.clone())));
        assert!(!entails4(&gamma, &phi));
    }

    #[test]
    fn proposition_1_counterexample_strong() {
        // {ψ, φ, ¬φ} ⊨4 φ, but {φ, ¬φ} ⊭4 ψ→φ.
        let (psi, phi) = (atom("p"), atom("q"));
        assert!(entails4(
            &[psi.clone(), phi.clone(), phi.clone().not()],
            &phi
        ));
        assert!(!entails4(
            &[phi.clone(), phi.clone().not()],
            &psi.strong_imp(phi)
        ));
    }

    #[test]
    fn proposition_2_congruence_of_strong_iff() {
        // ψ↔φ ⊨4 Θ(ψ)↔Θ(φ) for sample schemata Θ.
        let (psi, phi) = (atom("p"), atom("q"));
        let iff = psi.clone().strong_iff(phi.clone());
        let schemata: Vec<Box<dyn Fn(Formula) -> Formula>> = vec![
            Box::new(|x: Formula| x.not()),
            Box::new(|x: Formula| x.and(Formula::atom("r"))),
            Box::new(|x: Formula| Formula::atom("r").or(x)),
            Box::new(|x: Formula| x.clone().internal_imp(x)),
            Box::new(|x: Formula| Formula::atom("r").strong_imp(x)),
        ];
        for theta in &schemata {
            let lhs = theta(psi.clone());
            let rhs = theta(phi.clone());
            assert!(
                entails4(std::slice::from_ref(&iff), &lhs.strong_iff(rhs)),
                "congruence failed"
            );
        }
    }

    #[test]
    fn countermodel_reports_witness() {
        let (p, q) = (atom("p"), atom("q"));
        let cm = countermodel(&[p.clone(), p.not()], &q).expect("countermodel exists");
        assert_eq!(cm.get("p"), crate::truth::TruthValue::Both);
        assert!(!cm.get("q").is_designated());
    }

    #[test]
    fn tautologies() {
        let p = atom("p");
        // p ⊃ p is a tautology; p ∨ ¬p is NOT (⊥ defeats it).
        assert!(tautology4(&p.clone().internal_imp(p.clone())));
        assert!(!tautology4(&p.clone().or(p.clone().not())));
        // Neither is p ↦ p, for the same reason.
        assert!(!tautology4(&p.clone().material_imp(p.clone())));
        // But p → p is: strong implication of a formula by itself.
        assert!(tautology4(&p.clone().strong_imp(p)));
    }

    #[test]
    fn equivalence_checks_de_morgan() {
        let (p, q) = (atom("p"), atom("q"));
        assert!(equivalent4(
            &p.clone().and(q.clone()).not(),
            &p.clone().not().or(q.clone().not())
        ));
        assert!(equivalent4(
            &p.clone().or(q.clone()).not(),
            &p.clone().not().and(q.not())
        ));
        assert!(!equivalent4(&p.clone(), &p.not()));
    }

    #[test]
    #[should_panic(expected = "exceeds the exhaustive-checker limit")]
    fn atom_limit_is_enforced() {
        let big: Vec<Formula> = (0..13).map(|i| atom(&format!("x{i}"))).collect();
        let conj = big.into_iter().reduce(|a, b| a.and(b)).unwrap();
        let _ = entails4(&[], &conj);
    }
}
