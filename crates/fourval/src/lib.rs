//! Belnap's four-valued logic `FOUR` and the bilattice machinery underlying
//! the paraconsistent description logic SHOIN(D)4.
//!
//! This crate is the semantic foundation of the workspace. It provides:
//!
//! * [`TruthValue`] — the four truth values `t`, `f`, `⊤` (Both) and `⊥`
//!   (Neither), with the truth-order (`≤t`) and knowledge-order (`≤k`)
//!   lattice operations, negation, and the three implications of the paper
//!   (material `↦`, internal `⊃`, strong `→`).
//! * [`bilattice::SetPair`] — the `<P, N>` bilattice over an arbitrary
//!   finite domain, in which SHOIN(D)4 interprets concepts and roles.
//! * [`prop`] — a propositional four-valued language with all three
//!   implications, used to verify Propositions 1 and 2 of the paper.
//! * [`valuation`] / [`consequence`] — exhaustive model enumeration and the
//!   four-valued consequence relation `⊨4`.
//!
//! # Quick example
//!
//! ```
//! use fourval::{TruthValue, prop::Formula, consequence::entails4};
//!
//! // A contradiction does not explode: {p, ¬p} ⊭4 q.
//! let p = Formula::atom("p");
//! let q = Formula::atom("q");
//! let premises = vec![p.clone(), p.clone().not()];
//! assert!(!entails4(&premises, &q));
//! // But it still entails p itself.
//! assert!(entails4(&premises, &p));
//! assert_eq!(TruthValue::Both.neg(), TruthValue::Both);
//! ```

pub mod bilattice;
pub mod consequence;
pub mod prop;
pub mod signed;
pub mod truth;
pub mod valuation;

pub use bilattice::SetPair;
pub use consequence::{entails4, entails4_all, equivalent4};
pub use prop::Formula;
pub use truth::TruthValue;
pub use valuation::Valuation;
