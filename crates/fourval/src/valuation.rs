//! Four-valued valuations and exhaustive enumeration over finite atom sets.

use crate::prop::Atom;
use crate::truth::TruthValue;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// A four-valued valuation: a total map from atoms to `FOUR`, with `⊥`
/// (Neither) as the default for unmentioned atoms — "no information" is the
/// natural default in Belnap's reading.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    map: BTreeMap<Atom, TruthValue>,
}

impl Valuation {
    /// The everywhere-`⊥` valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(atom, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Atom, TruthValue)>) -> Self {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Look up an atom; unmentioned atoms evaluate to `⊥`.
    pub fn get(&self, atom: &str) -> TruthValue {
        self.map.get(atom).copied().unwrap_or(TruthValue::Neither)
    }

    /// Assign a value to an atom.
    pub fn set(&mut self, atom: Atom, value: TruthValue) {
        self.map.insert(atom, value);
    }

    /// Iterate over the explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&Atom, TruthValue)> {
        self.map.iter().map(|(a, v)| (a, *v))
    }

    /// Number of explicitly assigned atoms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no atom is explicitly assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over all `4^n` valuations of a finite atom set, in a stable
/// order. `n` is capped in practice by the consequence checker (callers
/// should keep atom sets small — this is a spec-level oracle, not a solver).
pub struct AllValuations {
    atoms: Vec<Atom>,
    /// Current assignment encoded base-4; `None` once exhausted.
    counter: Option<Vec<u8>>,
}

impl AllValuations {
    /// Enumerate every valuation of the given atoms.
    pub fn new(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let atoms: Vec<Atom> = {
            let set: BTreeSet<Atom> = atoms.into_iter().collect();
            set.into_iter().collect()
        };
        let counter = Some(vec![0u8; atoms.len()]);
        AllValuations { atoms, counter }
    }

    /// Total number of valuations (`4^n`), saturating.
    pub fn count_total(&self) -> u128 {
        4u128.saturating_pow(self.atoms.len() as u32)
    }
}

impl Iterator for AllValuations {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        let counter = self.counter.as_mut()?;
        let val = Valuation::from_pairs(
            self.atoms
                .iter()
                .zip(counter.iter())
                .map(|(a, d)| (a.clone(), TruthValue::ALL[*d as usize])),
        );
        // Increment the base-4 counter; drop to None on overflow.
        let mut i = 0;
        loop {
            if i == counter.len() {
                self.counter = None;
                break;
            }
            counter[i] += 1;
            if counter[i] < 4 {
                break;
            }
            counter[i] = 0;
            i += 1;
        }
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Formula;

    #[test]
    fn default_is_neither() {
        let v = Valuation::new();
        assert_eq!(v.get("anything"), TruthValue::Neither);
        assert!(v.is_empty());
    }

    #[test]
    fn set_then_get() {
        let mut v = Valuation::new();
        v.set(Atom::from("p"), TruthValue::Both);
        assert_eq!(v.get("p"), TruthValue::Both);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn enumeration_counts_4_pow_n() {
        for n in 0..4usize {
            let atoms: Vec<Atom> = (0..n)
                .map(|i| Atom::from(format!("a{i}").as_str()))
                .collect();
            let all: Vec<_> = AllValuations::new(atoms).collect();
            assert_eq!(all.len(), 4usize.pow(n as u32));
            // All distinct.
            let set: std::collections::BTreeSet<String> =
                all.iter().map(|v| v.to_string()).collect();
            assert_eq!(set.len(), all.len());
        }
    }

    #[test]
    fn enumeration_deduplicates_atoms() {
        let a = Atom::from("p");
        let all: Vec<_> = AllValuations::new([a.clone(), a]).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn every_formula_value_is_realized() {
        // Over one atom, p takes each of the four values exactly once.
        let f = Formula::atom("p");
        let mut seen = std::collections::BTreeSet::new();
        for v in AllValuations::new([Atom::from("p")]) {
            seen.insert(f.eval(&v));
        }
        assert_eq!(seen.len(), 4);
    }
}
