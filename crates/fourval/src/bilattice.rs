//! The `<P, N>` bilattice over a finite domain (Fitting, §2.2 of the paper).
//!
//! For a given domain, the elements are pairs `<P, N>` of subsets of the
//! domain: `P` is the set of individuals *supporting truth* and `N` the set
//! *supporting falsity*. Neither disjointness (`P ∩ N = ∅`) nor coverage
//! (`P ∪ N = Δ`) is required — dropping those two classical requirements is
//! precisely what makes the semantics paraconsistent.
//!
//! SHOIN(D)4 interprets every concept as such a pair; the operations here
//! are the `≤t`-direction meet, join and negation used in Table 2 of the
//! paper.

use crate::truth::TruthValue;
use std::collections::BTreeSet;
use std::fmt;

/// An element `<P, N>` of the bilattice over domain elements of type `T`.
///
/// `T` is ordered so the sets have a canonical form (useful for hashing,
/// model dedup and stable printing).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetPair<T: Ord> {
    /// `proj⁺`: elements with information supporting membership.
    pub pos: BTreeSet<T>,
    /// `proj⁻`: elements with information supporting non-membership.
    pub neg: BTreeSet<T>,
}

impl<T: Ord> Default for SetPair<T> {
    fn default() -> Self {
        SetPair {
            pos: BTreeSet::new(),
            neg: BTreeSet::new(),
        }
    }
}

impl<T: Ord + Clone> SetPair<T> {
    /// The empty pair `<∅, ∅>` (everything unknown).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Construct from positive and negative extensions.
    pub fn new(pos: impl IntoIterator<Item = T>, neg: impl IntoIterator<Item = T>) -> Self {
        SetPair {
            pos: pos.into_iter().collect(),
            neg: neg.into_iter().collect(),
        }
    }

    /// The interpretation of `⊤`: `<Δ, ∅>`.
    pub fn top(domain: impl IntoIterator<Item = T>) -> Self {
        SetPair {
            pos: domain.into_iter().collect(),
            neg: BTreeSet::new(),
        }
    }

    /// The interpretation of `⊥`: `<∅, Δ>`.
    pub fn bottom(domain: impl IntoIterator<Item = T>) -> Self {
        SetPair {
            pos: BTreeSet::new(),
            neg: domain.into_iter().collect(),
        }
    }

    /// Positive projection `proj⁺(<P,N>) = P` (Definition 1).
    pub fn proj_pos(&self) -> &BTreeSet<T> {
        &self.pos
    }

    /// Negative projection `proj⁻(<P,N>) = N` (Definition 1).
    pub fn proj_neg(&self) -> &BTreeSet<T> {
        &self.neg
    }

    /// Negation on the truth direction: `¬<P,N> = <N,P>`.
    pub fn neg(&self) -> Self {
        SetPair {
            pos: self.neg.clone(),
            neg: self.pos.clone(),
        }
    }

    /// Truth-order meet: `<P1,N1> ∧ <P2,N2> = <P1∩P2, N1∪N2>`.
    pub fn and(&self, other: &Self) -> Self {
        SetPair {
            pos: self.pos.intersection(&other.pos).cloned().collect(),
            neg: self.neg.union(&other.neg).cloned().collect(),
        }
    }

    /// Truth-order join: `<P1,N1> ∨ <P2,N2> = <P1∪P2, N1∩N2>`.
    pub fn or(&self, other: &Self) -> Self {
        SetPair {
            pos: self.pos.union(&other.pos).cloned().collect(),
            neg: self.neg.intersection(&other.neg).cloned().collect(),
        }
    }

    /// Knowledge-order meet (consensus): `<P1∩P2, N1∩N2>`.
    pub fn consensus(&self, other: &Self) -> Self {
        SetPair {
            pos: self.pos.intersection(&other.pos).cloned().collect(),
            neg: self.neg.intersection(&other.neg).cloned().collect(),
        }
    }

    /// Knowledge-order join (gullibility): `<P1∪P2, N1∪N2>`.
    pub fn accept_all(&self, other: &Self) -> Self {
        SetPair {
            pos: self.pos.union(&other.pos).cloned().collect(),
            neg: self.neg.union(&other.neg).cloned().collect(),
        }
    }

    /// Truth order `≤t`: `P1 ⊆ P2` and `N2 ⊆ N1`.
    pub fn le_t(&self, other: &Self) -> bool {
        self.pos.is_subset(&other.pos) && other.neg.is_subset(&self.neg)
    }

    /// Knowledge order `≤k`: `P1 ⊆ P2` and `N1 ⊆ N2`.
    pub fn le_k(&self, other: &Self) -> bool {
        self.pos.is_subset(&other.pos) && self.neg.is_subset(&other.neg)
    }

    /// The four-valued membership status of one element (Definition 3).
    pub fn status(&self, x: &T) -> TruthValue {
        TruthValue::from_bits(self.pos.contains(x), self.neg.contains(x))
    }

    /// Is this pair classical w.r.t. the given domain, i.e. `P ∩ N = ∅`
    /// and `P ∪ N = Δ`? Classical pairs are exactly the two-valued
    /// interpretations embedded in the bilattice.
    pub fn is_classical(&self, domain: &BTreeSet<T>) -> bool {
        self.pos.is_disjoint(&self.neg)
            && self.pos.union(&self.neg).cloned().collect::<BTreeSet<_>>() == *domain
    }

    /// Elements assigned `⊤` — the *localized* contradictions.
    pub fn contradictory_elements(&self) -> impl Iterator<Item = &T> {
        self.pos.intersection(&self.neg)
    }

    /// Elements assigned `⊥` w.r.t. a domain — information gaps.
    pub fn unknown_elements<'a>(&'a self, domain: &'a BTreeSet<T>) -> impl Iterator<Item = &'a T> {
        domain
            .iter()
            .filter(move |x| !self.pos.contains(x) && !self.neg.contains(x))
    }
}

impl<T: Ord + fmt::Display> fmt::Display for SetPair<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn set<T: fmt::Display>(f: &mut fmt::Formatter<'_>, s: &BTreeSet<T>) -> fmt::Result {
            write!(f, "{{")?;
            for (i, x) in s.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, "}}")
        }
        write!(f, "<")?;
        set(f, &self.pos)?;
        write!(f, ", ")?;
        set(f, &self.neg)?;
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> BTreeSet<u32> {
        [0, 1, 2, 3].into_iter().collect()
    }

    fn p(pos: &[u32], neg: &[u32]) -> SetPair<u32> {
        SetPair::new(pos.iter().copied(), neg.iter().copied())
    }

    #[test]
    fn projections_follow_definition_1() {
        let sp = p(&[1, 2], &[2, 3]);
        assert_eq!(sp.proj_pos().iter().copied().collect::<Vec<_>>(), [1, 2]);
        assert_eq!(sp.proj_neg().iter().copied().collect::<Vec<_>>(), [2, 3]);
    }

    #[test]
    fn negation_swaps_components() {
        let sp = p(&[1], &[2]);
        assert_eq!(sp.neg(), p(&[2], &[1]));
        assert_eq!(sp.neg().neg(), sp);
    }

    #[test]
    fn and_or_follow_bilattice_definitions() {
        let a = p(&[0, 1], &[2]);
        let b = p(&[1, 2], &[3]);
        assert_eq!(a.and(&b), p(&[1], &[2, 3]));
        assert_eq!(a.or(&b), p(&[0, 1, 2], &[]));
    }

    #[test]
    fn top_bottom_identities_prop3() {
        // Proposition 3: C⊓⊤ = C, C⊔⊤ = ⊤, C⊓⊥ = ⊥, C⊔⊥ = C.
        let c = p(&[0, 1], &[2, 3]);
        let top = SetPair::top(dom());
        let bot = SetPair::bottom(dom());
        assert_eq!(c.and(&top), c);
        assert_eq!(c.or(&top), top);
        assert_eq!(c.and(&bot), bot);
        assert_eq!(c.or(&bot), c);
    }

    #[test]
    fn de_morgan_prop4() {
        let a = p(&[0, 1], &[2]);
        let b = p(&[1, 3], &[0]);
        assert_eq!(a.or(&b).neg(), a.neg().and(&b.neg()));
        assert_eq!(a.and(&b).neg(), a.neg().or(&b.neg()));
        assert_eq!(SetPair::<u32>::top(dom()).neg(), SetPair::bottom(dom()));
    }

    #[test]
    fn status_matches_definition_3() {
        let sp = p(&[0, 1], &[1, 2]);
        assert_eq!(sp.status(&0), TruthValue::True);
        assert_eq!(sp.status(&1), TruthValue::Both);
        assert_eq!(sp.status(&2), TruthValue::False);
        assert_eq!(sp.status(&3), TruthValue::Neither);
    }

    #[test]
    fn classicality_check() {
        assert!(p(&[0, 1], &[2, 3]).is_classical(&dom()));
        assert!(!p(&[0, 1], &[1, 2, 3]).is_classical(&dom())); // overlap
        assert!(!p(&[0], &[2, 3]).is_classical(&dom())); // gap at 1
    }

    #[test]
    fn orders_are_consistent_with_pointwise_status() {
        let a = p(&[0], &[1, 2]);
        let b = p(&[0, 3], &[1]);
        assert!(a.le_t(&b));
        for x in dom() {
            assert!(a.status(&x).le_t(b.status(&x)), "at {x}");
        }
        let c = p(&[0], &[1]);
        let d = p(&[0, 2], &[1, 3]);
        assert!(c.le_k(&d));
        for x in dom() {
            assert!(c.status(&x).le_k(d.status(&x)), "at {x}");
        }
    }

    #[test]
    fn contradiction_and_gap_reporting() {
        let sp = p(&[0, 1], &[1, 2]);
        assert_eq!(
            sp.contradictory_elements().copied().collect::<Vec<_>>(),
            [1]
        );
        let d = dom();
        assert_eq!(sp.unknown_elements(&d).copied().collect::<Vec<_>>(), [3]);
    }

    #[test]
    fn display_renders_pairs() {
        assert_eq!(p(&[1], &[2]).to_string(), "<{1}, {2}>");
        assert_eq!(SetPair::<u32>::empty().to_string(), "<{}, {}>");
    }
}
