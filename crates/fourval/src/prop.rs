//! A propositional four-valued language with the three implications.
//!
//! This mirrors §2.2 of the paper at the propositional level: the
//! connectives `¬`, `∧`, `∨` plus material (`↦`), internal (`⊃`) and strong
//! (`→`) implication and strong bi-implication (`↔`). It exists to verify
//! Propositions 1 and 2 mechanically (see `consequence`), and to serve as a
//! minimal reference implementation of Belnap semantics that the DL layer's
//! behaviour can be cross-checked against.

use crate::truth::TruthValue;
use crate::valuation::Valuation;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Interned atom name. `Arc<str>` keeps clones of large formulas cheap.
pub type Atom = Arc<str>;

/// A propositional formula over `FOUR`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A propositional variable.
    Atom(Atom),
    /// A truth-value constant (`t`, `f`, `⊤`, `⊥` are all expressible).
    Const(TruthValue),
    /// Negation `¬φ`.
    Not(Arc<Formula>),
    /// Conjunction `φ ∧ ψ`.
    And(Arc<Formula>, Arc<Formula>),
    /// Disjunction `φ ∨ ψ`.
    Or(Arc<Formula>, Arc<Formula>),
    /// Material implication `φ ↦ ψ ≝ ¬φ ∨ ψ`.
    MaterialImp(Arc<Formula>, Arc<Formula>),
    /// Internal implication `φ ⊃ ψ`.
    InternalImp(Arc<Formula>, Arc<Formula>),
    /// Strong implication `φ → ψ`.
    StrongImp(Arc<Formula>, Arc<Formula>),
    /// Strong bi-implication `φ ↔ ψ`.
    StrongIff(Arc<Formula>, Arc<Formula>),
    /// Knowledge-order meet `φ ⊗ ψ` (Fitting's *consensus*): keeps only
    /// information both operands agree on.
    Consensus(Arc<Formula>, Arc<Formula>),
    /// Knowledge-order join `φ ⊕ ψ` (Fitting's *gullibility*): accepts
    /// information from either operand.
    Gullibility(Arc<Formula>, Arc<Formula>),
}

impl Formula {
    /// A propositional atom.
    pub fn atom(name: impl Into<Arc<str>>) -> Formula {
        Formula::Atom(name.into())
    }

    /// A constant formula.
    pub fn constant(v: TruthValue) -> Formula {
        Formula::Const(v)
    }

    /// `¬self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Arc::new(self))
    }

    /// `self ∧ rhs`
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Arc::new(self), Arc::new(rhs))
    }

    /// `self ∨ rhs`
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Arc::new(self), Arc::new(rhs))
    }

    /// `self ↦ rhs` (material implication)
    pub fn material_imp(self, rhs: Formula) -> Formula {
        Formula::MaterialImp(Arc::new(self), Arc::new(rhs))
    }

    /// `self ⊃ rhs` (internal implication)
    pub fn internal_imp(self, rhs: Formula) -> Formula {
        Formula::InternalImp(Arc::new(self), Arc::new(rhs))
    }

    /// `self → rhs` (strong implication)
    pub fn strong_imp(self, rhs: Formula) -> Formula {
        Formula::StrongImp(Arc::new(self), Arc::new(rhs))
    }

    /// `self ↔ rhs` (strong bi-implication)
    pub fn strong_iff(self, rhs: Formula) -> Formula {
        Formula::StrongIff(Arc::new(self), Arc::new(rhs))
    }

    /// `self ⊗ rhs` (knowledge-order meet / consensus)
    pub fn consensus(self, rhs: Formula) -> Formula {
        Formula::Consensus(Arc::new(self), Arc::new(rhs))
    }

    /// `self ⊕ rhs` (knowledge-order join / gullibility)
    pub fn gullibility(self, rhs: Formula) -> Formula {
        Formula::Gullibility(Arc::new(self), Arc::new(rhs))
    }

    /// Evaluate under a four-valued valuation.
    pub fn eval(&self, v: &Valuation) -> TruthValue {
        match self {
            Formula::Atom(a) => v.get(a),
            Formula::Const(c) => *c,
            Formula::Not(f) => f.eval(v).neg(),
            Formula::And(l, r) => l.eval(v).and(r.eval(v)),
            Formula::Or(l, r) => l.eval(v).or(r.eval(v)),
            Formula::MaterialImp(l, r) => l.eval(v).material_imp(r.eval(v)),
            Formula::InternalImp(l, r) => l.eval(v).internal_imp(r.eval(v)),
            Formula::StrongImp(l, r) => l.eval(v).strong_imp(r.eval(v)),
            Formula::StrongIff(l, r) => l.eval(v).strong_iff(r.eval(v)),
            Formula::Consensus(l, r) => l.eval(v).consensus(r.eval(v)),
            Formula::Gullibility(l, r) => l.eval(v).accept_all(r.eval(v)),
        }
    }

    /// Collect the atoms occurring in the formula.
    pub fn atoms(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Atom>) {
        match self {
            Formula::Atom(a) => {
                out.insert(a.clone());
            }
            Formula::Const(_) => {}
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(l, r)
            | Formula::Or(l, r)
            | Formula::MaterialImp(l, r)
            | Formula::InternalImp(l, r)
            | Formula::StrongImp(l, r)
            | Formula::StrongIff(l, r)
            | Formula::Consensus(l, r)
            | Formula::Gullibility(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    /// Substitute `replacement` for every occurrence of atom `target`.
    ///
    /// This is the "schemata" operation `Θ(ψ)` used by Proposition 2.
    pub fn substitute(&self, target: &str, replacement: &Formula) -> Formula {
        match self {
            Formula::Atom(a) if a.as_ref() == target => replacement.clone(),
            Formula::Atom(_) | Formula::Const(_) => self.clone(),
            Formula::Not(f) => f.substitute(target, replacement).not(),
            Formula::And(l, r) => l
                .substitute(target, replacement)
                .and(r.substitute(target, replacement)),
            Formula::Or(l, r) => l
                .substitute(target, replacement)
                .or(r.substitute(target, replacement)),
            Formula::MaterialImp(l, r) => l
                .substitute(target, replacement)
                .material_imp(r.substitute(target, replacement)),
            Formula::InternalImp(l, r) => l
                .substitute(target, replacement)
                .internal_imp(r.substitute(target, replacement)),
            Formula::StrongImp(l, r) => l
                .substitute(target, replacement)
                .strong_imp(r.substitute(target, replacement)),
            Formula::StrongIff(l, r) => l
                .substitute(target, replacement)
                .strong_iff(r.substitute(target, replacement)),
            Formula::Consensus(l, r) => l
                .substitute(target, replacement)
                .consensus(r.substitute(target, replacement)),
            Formula::Gullibility(l, r) => l
                .substitute(target, replacement)
                .gullibility(r.substitute(target, replacement)),
        }
    }

    /// Structural size (number of connectives + atoms), used by generators
    /// and complexity assertions in tests.
    pub fn size(&self) -> usize {
        match self {
            Formula::Atom(_) | Formula::Const(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(l, r)
            | Formula::Or(l, r)
            | Formula::MaterialImp(l, r)
            | Formula::InternalImp(l, r)
            | Formula::StrongImp(l, r)
            | Formula::StrongIff(l, r)
            | Formula::Consensus(l, r)
            | Formula::Gullibility(l, r) => 1 + l.size() + r.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Const(c) => write!(f, "{c}"),
            Formula::Not(x) => write!(f, "¬{x}"),
            Formula::And(l, r) => write!(f, "({l} ∧ {r})"),
            Formula::Or(l, r) => write!(f, "({l} ∨ {r})"),
            Formula::MaterialImp(l, r) => write!(f, "({l} ↦ {r})"),
            Formula::InternalImp(l, r) => write!(f, "({l} ⊃ {r})"),
            Formula::StrongImp(l, r) => write!(f, "({l} → {r})"),
            Formula::StrongIff(l, r) => write!(f, "({l} ↔ {r})"),
            Formula::Consensus(l, r) => write!(f, "({l} ⊗ {r})"),
            Formula::Gullibility(l, r) => write!(f, "({l} ⊕ {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthValue::*;

    fn v(pairs: &[(&str, TruthValue)]) -> Valuation {
        Valuation::from_pairs(pairs.iter().map(|(a, t)| (Atom::from(*a), *t)))
    }

    #[test]
    fn atom_evaluation_defaults_to_neither() {
        let f = Formula::atom("p");
        assert_eq!(f.eval(&v(&[])), Neither);
        assert_eq!(f.eval(&v(&[("p", Both)])), Both);
    }

    #[test]
    fn connectives_delegate_to_truth_ops() {
        let val = v(&[("p", Both), ("q", False)]);
        let p = Formula::atom("p");
        let q = Formula::atom("q");
        assert_eq!(p.clone().and(q.clone()).eval(&val), Both.and(False));
        assert_eq!(p.clone().or(q.clone()).eval(&val), Both.or(False));
        assert_eq!(p.clone().not().eval(&val), Both);
        assert_eq!(
            p.clone().material_imp(q.clone()).eval(&val),
            Both.material_imp(False)
        );
        assert_eq!(
            p.clone().internal_imp(q.clone()).eval(&val),
            Both.internal_imp(False)
        );
        assert_eq!(
            p.clone().strong_imp(q.clone()).eval(&val),
            Both.strong_imp(False)
        );
        assert_eq!(p.strong_iff(q).eval(&val), Both.strong_iff(False));
    }

    #[test]
    fn material_imp_equals_not_or() {
        // ↦ is definable; check on every pair of values via constants.
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                let lhs = Formula::constant(a).material_imp(Formula::constant(b));
                let rhs = Formula::constant(a).not().or(Formula::constant(b));
                let empty = v(&[]);
                assert_eq!(lhs.eval(&empty), rhs.eval(&empty));
            }
        }
    }

    #[test]
    fn atoms_are_collected_once() {
        let f = Formula::atom("p")
            .and(Formula::atom("q"))
            .or(Formula::atom("p").not());
        let atoms: Vec<_> = f.atoms().into_iter().collect();
        assert_eq!(atoms.len(), 2);
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let f = Formula::atom("p").and(Formula::atom("p").not());
        let g = f.substitute("p", &Formula::atom("q").or(Formula::atom("r")));
        assert!(g.atoms().iter().all(|a| a.as_ref() != "p"));
        assert_eq!(g.atoms().len(), 2);
    }

    #[test]
    fn size_counts_nodes() {
        let f = Formula::atom("p").and(Formula::atom("q")).not();
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn display_round_trips_symbols() {
        let f = Formula::atom("p").strong_imp(Formula::atom("q"));
        assert_eq!(f.to_string(), "(p → q)");
    }
}

#[cfg(test)]
mod bilattice_connective_tests {
    use super::*;
    use crate::truth::TruthValue::{self, *};

    fn v(pairs: &[(&str, TruthValue)]) -> Valuation {
        Valuation::from_pairs(pairs.iter().map(|(a, t)| (Atom::from(*a), *t)))
    }

    #[test]
    fn consensus_and_gullibility_eval() {
        let val = v(&[("p", True), ("q", False)]);
        let p = Formula::atom("p");
        let q = Formula::atom("q");
        // t ⊗ f = ⊥ (no agreement), t ⊕ f = ⊤ (accept everything).
        assert_eq!(p.clone().consensus(q.clone()).eval(&val), Neither);
        assert_eq!(p.clone().gullibility(q.clone()).eval(&val), Both);
    }

    #[test]
    fn knowledge_lattice_laws_on_formulas() {
        for a in TruthValue::ALL {
            for b in TruthValue::ALL {
                let val = v(&[("p", a), ("q", b)]);
                let p = Formula::atom("p");
                let q = Formula::atom("q");
                // Commutativity.
                assert_eq!(
                    p.clone().consensus(q.clone()).eval(&val),
                    q.clone().consensus(p.clone()).eval(&val)
                );
                assert_eq!(
                    p.clone().gullibility(q.clone()).eval(&val),
                    q.clone().gullibility(p.clone()).eval(&val)
                );
                // Absorption: a ⊗ (a ⊕ b) = a.
                assert_eq!(
                    p.clone()
                        .consensus(p.clone().gullibility(q.clone()))
                        .eval(&val),
                    a
                );
            }
        }
    }

    #[test]
    fn connectives_flow_through_substitution_and_atoms() {
        let f = Formula::atom("p").consensus(Formula::atom("q").gullibility(Formula::atom("p")));
        assert_eq!(f.atoms().len(), 2);
        assert_eq!(f.size(), 5);
        let g = f.substitute("p", &Formula::atom("r"));
        assert!(g.atoms().iter().all(|a| a.as_ref() != "p"));
        assert_eq!(f.to_string(), "(p ⊗ (q ⊕ p))");
    }

    #[test]
    fn signed_reduction_covers_bilattice_connectives() {
        use crate::signed::{negative, positive};
        use crate::valuation::AllValuations;
        use std::collections::BTreeMap;
        let f = Formula::atom("p").consensus(Formula::atom("q"));
        let g = Formula::atom("p").gullibility(Formula::atom("q"));
        for val in AllValuations::new([Atom::from("p"), Atom::from("q")]) {
            let mut signed = BTreeMap::new();
            for (a, tv) in val.iter() {
                signed.insert(format!("{a}+"), tv.has_true_info());
                signed.insert(format!("{a}-"), tv.has_false_info());
            }
            for h in [&f, &g] {
                assert_eq!(positive(h).eval(&signed), h.eval(&val).has_true_info());
                assert_eq!(negative(h).eval(&signed), h.eval(&val).has_false_info());
            }
        }
    }
}
