/root/repo/target/release/deps/bench-71b01970991c5fb1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-71b01970991c5fb1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-71b01970991c5fb1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
