/root/repo/target/release/deps/rand-00d0311fb94df48e.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-00d0311fb94df48e.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-00d0311fb94df48e.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
