/root/repo/target/release/deps/shoin4-f61d91b497127042.d: crates/cli/src/main.rs

/root/repo/target/release/deps/shoin4-f61d91b497127042: crates/cli/src/main.rs

crates/cli/src/main.rs:
