/root/repo/target/release/deps/tableau-62f6f1c1354d388c.d: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs

/root/repo/target/release/deps/libtableau-62f6f1c1354d388c.rlib: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs

/root/repo/target/release/deps/libtableau-62f6f1c1354d388c.rmeta: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs

crates/tableau/src/lib.rs:
crates/tableau/src/blocking.rs:
crates/tableau/src/clash.rs:
crates/tableau/src/config.rs:
crates/tableau/src/datatype_oracle.rs:
crates/tableau/src/graph.rs:
crates/tableau/src/model.rs:
crates/tableau/src/node.rs:
crates/tableau/src/reasoner.rs:
crates/tableau/src/rules.rs:
crates/tableau/src/stats.rs:
