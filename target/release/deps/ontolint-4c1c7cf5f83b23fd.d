/root/repo/target/release/deps/ontolint-4c1c7cf5f83b23fd.d: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

/root/repo/target/release/deps/libontolint-4c1c7cf5f83b23fd.rlib: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

/root/repo/target/release/deps/libontolint-4c1c7cf5f83b23fd.rmeta: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

crates/ontolint/src/lib.rs:
crates/ontolint/src/contradictions.rs:
crates/ontolint/src/cost.rs:
crates/ontolint/src/diagnostics.rs:
crates/ontolint/src/graph.rs:
crates/ontolint/src/hygiene.rs:
