/root/repo/target/release/deps/baselines-7c35717695047e5f.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/release/deps/libbaselines-7c35717695047e5f.rlib: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/release/deps/libbaselines-7c35717695047e5f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
