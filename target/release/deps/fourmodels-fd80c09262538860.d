/root/repo/target/release/deps/fourmodels-fd80c09262538860.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/release/deps/libfourmodels-fd80c09262538860.rlib: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/release/deps/libfourmodels-fd80c09262538860.rmeta: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
