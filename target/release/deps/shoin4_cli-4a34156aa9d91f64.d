/root/repo/target/release/deps/shoin4_cli-4a34156aa9d91f64.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libshoin4_cli-4a34156aa9d91f64.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libshoin4_cli-4a34156aa9d91f64.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
