/root/repo/target/release/deps/summarize_experiments-7f99570fe341812e.d: crates/bench/src/bin/summarize_experiments.rs

/root/repo/target/release/deps/summarize_experiments-7f99570fe341812e: crates/bench/src/bin/summarize_experiments.rs

crates/bench/src/bin/summarize_experiments.rs:
