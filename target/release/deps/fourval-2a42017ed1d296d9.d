/root/repo/target/release/deps/fourval-2a42017ed1d296d9.d: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

/root/repo/target/release/deps/libfourval-2a42017ed1d296d9.rlib: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

/root/repo/target/release/deps/libfourval-2a42017ed1d296d9.rmeta: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

crates/fourval/src/lib.rs:
crates/fourval/src/bilattice.rs:
crates/fourval/src/consequence.rs:
crates/fourval/src/prop.rs:
crates/fourval/src/signed.rs:
crates/fourval/src/truth.rs:
crates/fourval/src/valuation.rs:
