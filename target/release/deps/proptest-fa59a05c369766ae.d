/root/repo/target/release/deps/proptest-fa59a05c369766ae.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fa59a05c369766ae.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fa59a05c369766ae.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
