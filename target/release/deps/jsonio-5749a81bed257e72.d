/root/repo/target/release/deps/jsonio-5749a81bed257e72.d: crates/jsonio/src/lib.rs

/root/repo/target/release/deps/libjsonio-5749a81bed257e72.rlib: crates/jsonio/src/lib.rs

/root/repo/target/release/deps/libjsonio-5749a81bed257e72.rmeta: crates/jsonio/src/lib.rs

crates/jsonio/src/lib.rs:
