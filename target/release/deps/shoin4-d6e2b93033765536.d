/root/repo/target/release/deps/shoin4-d6e2b93033765536.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs

/root/repo/target/release/deps/libshoin4-d6e2b93033765536.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs

/root/repo/target/release/deps/libshoin4-d6e2b93033765536.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/inclusion.rs:
crates/core/src/induced.rs:
crates/core/src/interp4.rs:
crates/core/src/json.rs:
crates/core/src/kb4.rs:
crates/core/src/parser4.rs:
crates/core/src/printer4.rs:
crates/core/src/reasoner4.rs:
crates/core/src/transform.rs:
