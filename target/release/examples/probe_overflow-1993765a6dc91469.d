/root/repo/target/release/examples/probe_overflow-1993765a6dc91469.d: crates/fourmodels/examples/probe_overflow.rs

/root/repo/target/release/examples/probe_overflow-1993765a6dc91469: crates/fourmodels/examples/probe_overflow.rs

crates/fourmodels/examples/probe_overflow.rs:
