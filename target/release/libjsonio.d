/root/repo/target/release/libjsonio.rlib: /root/repo/crates/jsonio/src/lib.rs
