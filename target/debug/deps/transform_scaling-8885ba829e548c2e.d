/root/repo/target/debug/deps/transform_scaling-8885ba829e548c2e.d: crates/bench/benches/transform_scaling.rs

/root/repo/target/debug/deps/libtransform_scaling-8885ba829e548c2e.rmeta: crates/bench/benches/transform_scaling.rs

crates/bench/benches/transform_scaling.rs:
