/root/repo/target/debug/deps/bench-93a9d10350ff39b3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-93a9d10350ff39b3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
