/root/repo/target/debug/deps/baselines-3489d54eeac81d3a.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-3489d54eeac81d3a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
