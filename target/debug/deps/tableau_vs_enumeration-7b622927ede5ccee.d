/root/repo/target/debug/deps/tableau_vs_enumeration-7b622927ede5ccee.d: crates/bench/../../tests/tableau_vs_enumeration.rs Cargo.toml

/root/repo/target/debug/deps/libtableau_vs_enumeration-7b622927ede5ccee.rmeta: crates/bench/../../tests/tableau_vs_enumeration.rs Cargo.toml

crates/bench/../../tests/tableau_vs_enumeration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
