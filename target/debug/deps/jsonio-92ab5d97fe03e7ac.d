/root/repo/target/debug/deps/jsonio-92ab5d97fe03e7ac.d: crates/jsonio/src/lib.rs

/root/repo/target/debug/deps/libjsonio-92ab5d97fe03e7ac.rlib: crates/jsonio/src/lib.rs

/root/repo/target/debug/deps/libjsonio-92ab5d97fe03e7ac.rmeta: crates/jsonio/src/lib.rs

crates/jsonio/src/lib.rs:
