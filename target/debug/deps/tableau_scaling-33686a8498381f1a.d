/root/repo/target/debug/deps/tableau_scaling-33686a8498381f1a.d: crates/bench/benches/tableau_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libtableau_scaling-33686a8498381f1a.rmeta: crates/bench/benches/tableau_scaling.rs Cargo.toml

crates/bench/benches/tableau_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
