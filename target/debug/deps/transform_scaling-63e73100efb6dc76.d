/root/repo/target/debug/deps/transform_scaling-63e73100efb6dc76.d: crates/bench/benches/transform_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libtransform_scaling-63e73100efb6dc76.rmeta: crates/bench/benches/transform_scaling.rs Cargo.toml

crates/bench/benches/transform_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
