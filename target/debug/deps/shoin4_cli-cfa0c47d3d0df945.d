/root/repo/target/debug/deps/shoin4_cli-cfa0c47d3d0df945.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshoin4_cli-cfa0c47d3d0df945.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
