/root/repo/target/debug/deps/table4_models-78b9eb0395a2816e.d: crates/bench/../../tests/table4_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_models-78b9eb0395a2816e.rmeta: crates/bench/../../tests/table4_models.rs Cargo.toml

crates/bench/../../tests/table4_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
