/root/repo/target/debug/deps/ontolint-fcb24d0fa27261de.d: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs Cargo.toml

/root/repo/target/debug/deps/libontolint-fcb24d0fa27261de.rmeta: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs Cargo.toml

crates/ontolint/src/lib.rs:
crates/ontolint/src/contradictions.rs:
crates/ontolint/src/cost.rs:
crates/ontolint/src/diagnostics.rs:
crates/ontolint/src/graph.rs:
crates/ontolint/src/hygiene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
