/root/repo/target/debug/deps/role_semantics-bd4a95d89d95b554.d: crates/bench/../../tests/role_semantics.rs

/root/repo/target/debug/deps/librole_semantics-bd4a95d89d95b554.rmeta: crates/bench/../../tests/role_semantics.rs

crates/bench/../../tests/role_semantics.rs:
