/root/repo/target/debug/deps/tolerance-47d2e4d051270a1a.d: crates/bench/benches/tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libtolerance-47d2e4d051270a1a.rmeta: crates/bench/benches/tolerance.rs Cargo.toml

crates/bench/benches/tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
