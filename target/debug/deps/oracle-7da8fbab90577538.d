/root/repo/target/debug/deps/oracle-7da8fbab90577538.d: crates/ontolint/tests/oracle.rs

/root/repo/target/debug/deps/liboracle-7da8fbab90577538.rmeta: crates/ontolint/tests/oracle.rs

crates/ontolint/tests/oracle.rs:
