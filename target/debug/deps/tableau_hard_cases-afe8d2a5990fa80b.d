/root/repo/target/debug/deps/tableau_hard_cases-afe8d2a5990fa80b.d: crates/bench/../../tests/tableau_hard_cases.rs

/root/repo/target/debug/deps/tableau_hard_cases-afe8d2a5990fa80b: crates/bench/../../tests/tableau_hard_cases.rs

crates/bench/../../tests/tableau_hard_cases.rs:
