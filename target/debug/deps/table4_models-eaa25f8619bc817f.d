/root/repo/target/debug/deps/table4_models-eaa25f8619bc817f.d: crates/bench/../../tests/table4_models.rs

/root/repo/target/debug/deps/table4_models-eaa25f8619bc817f: crates/bench/../../tests/table4_models.rs

crates/bench/../../tests/table4_models.rs:
