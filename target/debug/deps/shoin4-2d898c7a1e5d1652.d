/root/repo/target/debug/deps/shoin4-2d898c7a1e5d1652.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libshoin4-2d898c7a1e5d1652.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/inclusion.rs:
crates/core/src/induced.rs:
crates/core/src/interp4.rs:
crates/core/src/json.rs:
crates/core/src/kb4.rs:
crates/core/src/parser4.rs:
crates/core/src/printer4.rs:
crates/core/src/reasoner4.rs:
crates/core/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
