/root/repo/target/debug/deps/baselines-24dd6cd6ba0c59b4.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/debug/deps/baselines-24dd6cd6ba0c59b4: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
