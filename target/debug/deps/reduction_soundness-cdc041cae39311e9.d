/root/repo/target/debug/deps/reduction_soundness-cdc041cae39311e9.d: crates/bench/../../tests/reduction_soundness.rs

/root/repo/target/debug/deps/libreduction_soundness-cdc041cae39311e9.rmeta: crates/bench/../../tests/reduction_soundness.rs

crates/bench/../../tests/reduction_soundness.rs:
