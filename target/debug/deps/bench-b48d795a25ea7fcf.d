/root/repo/target/debug/deps/bench-b48d795a25ea7fcf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-b48d795a25ea7fcf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-b48d795a25ea7fcf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
