/root/repo/target/debug/deps/parser_roundtrip-01e5825c62dedfc7.d: crates/bench/../../tests/parser_roundtrip.rs

/root/repo/target/debug/deps/parser_roundtrip-01e5825c62dedfc7: crates/bench/../../tests/parser_roundtrip.rs

crates/bench/../../tests/parser_roundtrip.rs:
