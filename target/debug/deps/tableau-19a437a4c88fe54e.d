/root/repo/target/debug/deps/tableau-19a437a4c88fe54e.d: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs

/root/repo/target/debug/deps/libtableau-19a437a4c88fe54e.rmeta: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs

crates/tableau/src/lib.rs:
crates/tableau/src/blocking.rs:
crates/tableau/src/clash.rs:
crates/tableau/src/config.rs:
crates/tableau/src/datatype_oracle.rs:
crates/tableau/src/graph.rs:
crates/tableau/src/model.rs:
crates/tableau/src/node.rs:
crates/tableau/src/reasoner.rs:
crates/tableau/src/rules.rs:
crates/tableau/src/stats.rs:
