/root/repo/target/debug/deps/jsonio-a7be8da1a66ed030.d: crates/jsonio/src/lib.rs

/root/repo/target/debug/deps/libjsonio-a7be8da1a66ed030.rmeta: crates/jsonio/src/lib.rs

crates/jsonio/src/lib.rs:
