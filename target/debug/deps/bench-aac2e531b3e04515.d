/root/repo/target/debug/deps/bench-aac2e531b3e04515.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-aac2e531b3e04515.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
