/root/repo/target/debug/deps/tableau_vs_enumeration-c5a206053a7f1114.d: crates/bench/../../tests/tableau_vs_enumeration.rs

/root/repo/target/debug/deps/tableau_vs_enumeration-c5a206053a7f1114: crates/bench/../../tests/tableau_vs_enumeration.rs

crates/bench/../../tests/tableau_vs_enumeration.rs:
