/root/repo/target/debug/deps/bench-0ed224fc34941df4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-0ed224fc34941df4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
