/root/repo/target/debug/deps/datatype_oracle_props-0a4c7ef64ea4614a.d: crates/bench/../../tests/datatype_oracle_props.rs

/root/repo/target/debug/deps/datatype_oracle_props-0a4c7ef64ea4614a: crates/bench/../../tests/datatype_oracle_props.rs

crates/bench/../../tests/datatype_oracle_props.rs:
