/root/repo/target/debug/deps/tableau_hard_cases-8edead58d0913acc.d: crates/bench/../../tests/tableau_hard_cases.rs Cargo.toml

/root/repo/target/debug/deps/libtableau_hard_cases-8edead58d0913acc.rmeta: crates/bench/../../tests/tableau_hard_cases.rs Cargo.toml

crates/bench/../../tests/tableau_hard_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
