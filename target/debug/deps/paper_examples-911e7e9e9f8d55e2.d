/root/repo/target/debug/deps/paper_examples-911e7e9e9f8d55e2.d: crates/bench/../../tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-911e7e9e9f8d55e2: crates/bench/../../tests/paper_examples.rs

crates/bench/../../tests/paper_examples.rs:
