/root/repo/target/debug/deps/serialization_roundtrip-85680e20013a436f.d: crates/bench/../../tests/serialization_roundtrip.rs

/root/repo/target/debug/deps/libserialization_roundtrip-85680e20013a436f.rmeta: crates/bench/../../tests/serialization_roundtrip.rs

crates/bench/../../tests/serialization_roundtrip.rs:
