/root/repo/target/debug/deps/jsonio-3eee2e4b24b0aa91.d: crates/jsonio/src/lib.rs

/root/repo/target/debug/deps/jsonio-3eee2e4b24b0aa91: crates/jsonio/src/lib.rs

crates/jsonio/src/lib.rs:
