/root/repo/target/debug/deps/summarize_experiments-c62352eea21ee4ca.d: crates/bench/src/bin/summarize_experiments.rs

/root/repo/target/debug/deps/libsummarize_experiments-c62352eea21ee4ca.rmeta: crates/bench/src/bin/summarize_experiments.rs

crates/bench/src/bin/summarize_experiments.rs:
