/root/repo/target/debug/deps/role_semantics-4d545e128bd321e8.d: crates/bench/../../tests/role_semantics.rs

/root/repo/target/debug/deps/role_semantics-4d545e128bd321e8: crates/bench/../../tests/role_semantics.rs

crates/bench/../../tests/role_semantics.rs:
