/root/repo/target/debug/deps/fourmodels-9d446ebcf8f64601.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/debug/deps/libfourmodels-9d446ebcf8f64601.rlib: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/debug/deps/libfourmodels-9d446ebcf8f64601.rmeta: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
