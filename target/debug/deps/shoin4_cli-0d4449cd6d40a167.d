/root/repo/target/debug/deps/shoin4_cli-0d4449cd6d40a167.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libshoin4_cli-0d4449cd6d40a167.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
