/root/repo/target/debug/deps/shoin4_cli-c4a5560e2571fc37.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libshoin4_cli-c4a5560e2571fc37.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libshoin4_cli-c4a5560e2571fc37.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
