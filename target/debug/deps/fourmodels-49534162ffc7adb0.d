/root/repo/target/debug/deps/fourmodels-49534162ffc7adb0.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/debug/deps/fourmodels-49534162ffc7adb0: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
