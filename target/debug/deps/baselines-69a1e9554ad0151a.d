/root/repo/target/debug/deps/baselines-69a1e9554ad0151a.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-69a1e9554ad0151a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
