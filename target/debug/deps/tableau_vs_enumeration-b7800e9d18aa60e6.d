/root/repo/target/debug/deps/tableau_vs_enumeration-b7800e9d18aa60e6.d: crates/bench/../../tests/tableau_vs_enumeration.rs

/root/repo/target/debug/deps/libtableau_vs_enumeration-b7800e9d18aa60e6.rmeta: crates/bench/../../tests/tableau_vs_enumeration.rs

crates/bench/../../tests/tableau_vs_enumeration.rs:
