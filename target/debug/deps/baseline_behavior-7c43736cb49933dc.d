/root/repo/target/debug/deps/baseline_behavior-7c43736cb49933dc.d: crates/bench/../../tests/baseline_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_behavior-7c43736cb49933dc.rmeta: crates/bench/../../tests/baseline_behavior.rs Cargo.toml

crates/bench/../../tests/baseline_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
