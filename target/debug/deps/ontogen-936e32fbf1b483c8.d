/root/repo/target/debug/deps/ontogen-936e32fbf1b483c8.d: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs

/root/repo/target/debug/deps/libontogen-936e32fbf1b483c8.rlib: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs

/root/repo/target/debug/deps/libontogen-936e32fbf1b483c8.rmeta: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs

crates/ontogen/src/lib.rs:
crates/ontogen/src/exceptions.rs:
crates/ontogen/src/inject.rs:
crates/ontogen/src/lintseed.rs:
crates/ontogen/src/medical.rs:
crates/ontogen/src/queries.rs:
crates/ontogen/src/random.rs:
crates/ontogen/src/taxonomy.rs:
crates/ontogen/src/university.rs:
