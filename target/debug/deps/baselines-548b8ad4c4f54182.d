/root/repo/target/debug/deps/baselines-548b8ad4c4f54182.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/debug/deps/libbaselines-548b8ad4c4f54182.rlib: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/debug/deps/libbaselines-548b8ad4c4f54182.rmeta: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
