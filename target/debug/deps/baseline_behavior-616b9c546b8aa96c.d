/root/repo/target/debug/deps/baseline_behavior-616b9c546b8aa96c.d: crates/bench/../../tests/baseline_behavior.rs

/root/repo/target/debug/deps/baseline_behavior-616b9c546b8aa96c: crates/bench/../../tests/baseline_behavior.rs

crates/bench/../../tests/baseline_behavior.rs:
