/root/repo/target/debug/deps/baseline_behavior-731f8312da620991.d: crates/bench/../../tests/baseline_behavior.rs

/root/repo/target/debug/deps/libbaseline_behavior-731f8312da620991.rmeta: crates/bench/../../tests/baseline_behavior.rs

crates/bench/../../tests/baseline_behavior.rs:
