/root/repo/target/debug/deps/tolerance-138bdeb84bb30478.d: crates/bench/benches/tolerance.rs

/root/repo/target/debug/deps/libtolerance-138bdeb84bb30478.rmeta: crates/bench/benches/tolerance.rs

crates/bench/benches/tolerance.rs:
