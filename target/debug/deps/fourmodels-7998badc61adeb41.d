/root/repo/target/debug/deps/fourmodels-7998badc61adeb41.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/debug/deps/libfourmodels-7998badc61adeb41.rmeta: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
