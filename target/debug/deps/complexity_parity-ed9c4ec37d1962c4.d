/root/repo/target/debug/deps/complexity_parity-ed9c4ec37d1962c4.d: crates/bench/benches/complexity_parity.rs

/root/repo/target/debug/deps/libcomplexity_parity-ed9c4ec37d1962c4.rmeta: crates/bench/benches/complexity_parity.rs

crates/bench/benches/complexity_parity.rs:
