/root/repo/target/debug/deps/ontolint-fe0ba5860f40c68f.d: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

/root/repo/target/debug/deps/ontolint-fe0ba5860f40c68f: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

crates/ontolint/src/lib.rs:
crates/ontolint/src/contradictions.rs:
crates/ontolint/src/cost.rs:
crates/ontolint/src/diagnostics.rs:
crates/ontolint/src/graph.rs:
crates/ontolint/src/hygiene.rs:
