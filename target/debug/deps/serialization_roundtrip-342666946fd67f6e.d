/root/repo/target/debug/deps/serialization_roundtrip-342666946fd67f6e.d: crates/bench/../../tests/serialization_roundtrip.rs

/root/repo/target/debug/deps/serialization_roundtrip-342666946fd67f6e: crates/bench/../../tests/serialization_roundtrip.rs

crates/bench/../../tests/serialization_roundtrip.rs:
