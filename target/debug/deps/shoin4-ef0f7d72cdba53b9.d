/root/repo/target/debug/deps/shoin4-ef0f7d72cdba53b9.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libshoin4-ef0f7d72cdba53b9.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
