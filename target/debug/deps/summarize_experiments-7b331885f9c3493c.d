/root/repo/target/debug/deps/summarize_experiments-7b331885f9c3493c.d: crates/bench/src/bin/summarize_experiments.rs

/root/repo/target/debug/deps/summarize_experiments-7b331885f9c3493c: crates/bench/src/bin/summarize_experiments.rs

crates/bench/src/bin/summarize_experiments.rs:
