/root/repo/target/debug/deps/paper_examples-6df6f2b4e0d7d00a.d: crates/bench/../../tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-6df6f2b4e0d7d00a.rmeta: crates/bench/../../tests/paper_examples.rs

crates/bench/../../tests/paper_examples.rs:
