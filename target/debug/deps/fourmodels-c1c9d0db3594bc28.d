/root/repo/target/debug/deps/fourmodels-c1c9d0db3594bc28.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libfourmodels-c1c9d0db3594bc28.rmeta: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs Cargo.toml

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
