/root/repo/target/debug/deps/serialization_roundtrip-d869c87f5c85f341.d: crates/bench/../../tests/serialization_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserialization_roundtrip-d869c87f5c85f341.rmeta: crates/bench/../../tests/serialization_roundtrip.rs Cargo.toml

crates/bench/../../tests/serialization_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
