/root/repo/target/debug/deps/fourval-2925fb071af8a879.d: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs Cargo.toml

/root/repo/target/debug/deps/libfourval-2925fb071af8a879.rmeta: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs Cargo.toml

crates/fourval/src/lib.rs:
crates/fourval/src/bilattice.rs:
crates/fourval/src/consequence.rs:
crates/fourval/src/prop.rs:
crates/fourval/src/signed.rs:
crates/fourval/src/truth.rs:
crates/fourval/src/valuation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
