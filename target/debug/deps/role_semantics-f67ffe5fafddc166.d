/root/repo/target/debug/deps/role_semantics-f67ffe5fafddc166.d: crates/bench/../../tests/role_semantics.rs Cargo.toml

/root/repo/target/debug/deps/librole_semantics-f67ffe5fafddc166.rmeta: crates/bench/../../tests/role_semantics.rs Cargo.toml

crates/bench/../../tests/role_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
