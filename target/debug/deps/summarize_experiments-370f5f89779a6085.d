/root/repo/target/debug/deps/summarize_experiments-370f5f89779a6085.d: crates/bench/src/bin/summarize_experiments.rs

/root/repo/target/debug/deps/summarize_experiments-370f5f89779a6085: crates/bench/src/bin/summarize_experiments.rs

crates/bench/src/bin/summarize_experiments.rs:
