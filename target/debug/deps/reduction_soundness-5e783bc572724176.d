/root/repo/target/debug/deps/reduction_soundness-5e783bc572724176.d: crates/bench/../../tests/reduction_soundness.rs

/root/repo/target/debug/deps/reduction_soundness-5e783bc572724176: crates/bench/../../tests/reduction_soundness.rs

crates/bench/../../tests/reduction_soundness.rs:
