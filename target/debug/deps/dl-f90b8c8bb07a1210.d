/root/repo/target/debug/deps/dl-f90b8c8bb07a1210.d: crates/dl/src/lib.rs crates/dl/src/axiom.rs crates/dl/src/concept.rs crates/dl/src/datatype.rs crates/dl/src/json.rs crates/dl/src/kb.rs crates/dl/src/name.rs crates/dl/src/nnf.rs crates/dl/src/parser.rs crates/dl/src/printer.rs crates/dl/src/snapshot.rs

/root/repo/target/debug/deps/dl-f90b8c8bb07a1210: crates/dl/src/lib.rs crates/dl/src/axiom.rs crates/dl/src/concept.rs crates/dl/src/datatype.rs crates/dl/src/json.rs crates/dl/src/kb.rs crates/dl/src/name.rs crates/dl/src/nnf.rs crates/dl/src/parser.rs crates/dl/src/printer.rs crates/dl/src/snapshot.rs

crates/dl/src/lib.rs:
crates/dl/src/axiom.rs:
crates/dl/src/concept.rs:
crates/dl/src/datatype.rs:
crates/dl/src/json.rs:
crates/dl/src/kb.rs:
crates/dl/src/name.rs:
crates/dl/src/nnf.rs:
crates/dl/src/parser.rs:
crates/dl/src/printer.rs:
crates/dl/src/snapshot.rs:
