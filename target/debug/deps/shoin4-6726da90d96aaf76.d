/root/repo/target/debug/deps/shoin4-6726da90d96aaf76.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shoin4-6726da90d96aaf76: crates/cli/src/main.rs

crates/cli/src/main.rs:
