/root/repo/target/debug/deps/summarize_experiments-4a9bfdbcbd9c535c.d: crates/bench/src/bin/summarize_experiments.rs

/root/repo/target/debug/deps/libsummarize_experiments-4a9bfdbcbd9c535c.rmeta: crates/bench/src/bin/summarize_experiments.rs

crates/bench/src/bin/summarize_experiments.rs:
