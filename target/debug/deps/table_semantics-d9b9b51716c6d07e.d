/root/repo/target/debug/deps/table_semantics-d9b9b51716c6d07e.d: crates/bench/../../tests/table_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libtable_semantics-d9b9b51716c6d07e.rmeta: crates/bench/../../tests/table_semantics.rs Cargo.toml

crates/bench/../../tests/table_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
