/root/repo/target/debug/deps/ontogen-66a2d1466155aca6.d: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs

/root/repo/target/debug/deps/libontogen-66a2d1466155aca6.rmeta: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs

crates/ontogen/src/lib.rs:
crates/ontogen/src/exceptions.rs:
crates/ontogen/src/inject.rs:
crates/ontogen/src/lintseed.rs:
crates/ontogen/src/medical.rs:
crates/ontogen/src/queries.rs:
crates/ontogen/src/random.rs:
crates/ontogen/src/taxonomy.rs:
crates/ontogen/src/university.rs:
