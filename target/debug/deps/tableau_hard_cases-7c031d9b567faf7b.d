/root/repo/target/debug/deps/tableau_hard_cases-7c031d9b567faf7b.d: crates/bench/../../tests/tableau_hard_cases.rs

/root/repo/target/debug/deps/libtableau_hard_cases-7c031d9b567faf7b.rmeta: crates/bench/../../tests/tableau_hard_cases.rs

crates/bench/../../tests/tableau_hard_cases.rs:
