/root/repo/target/debug/deps/rand-888584b5f1b7a9e8.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-888584b5f1b7a9e8.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
