/root/repo/target/debug/deps/baselines-bd0605fc0b8607b4.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/debug/deps/libbaselines-bd0605fc0b8607b4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
