/root/repo/target/debug/deps/paper_examples-93adc980a706f4f3.d: crates/bench/../../tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-93adc980a706f4f3.rmeta: crates/bench/../../tests/paper_examples.rs Cargo.toml

crates/bench/../../tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
