/root/repo/target/debug/deps/oracle-6672fa3711a5dc48.d: crates/ontolint/tests/oracle.rs

/root/repo/target/debug/deps/oracle-6672fa3711a5dc48: crates/ontolint/tests/oracle.rs

crates/ontolint/tests/oracle.rs:
