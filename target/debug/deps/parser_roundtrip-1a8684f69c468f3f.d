/root/repo/target/debug/deps/parser_roundtrip-1a8684f69c468f3f.d: crates/bench/../../tests/parser_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libparser_roundtrip-1a8684f69c468f3f.rmeta: crates/bench/../../tests/parser_roundtrip.rs Cargo.toml

crates/bench/../../tests/parser_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
