/root/repo/target/debug/deps/tableau_scaling-3c49c088871f29f6.d: crates/bench/benches/tableau_scaling.rs

/root/repo/target/debug/deps/libtableau_scaling-3c49c088871f29f6.rmeta: crates/bench/benches/tableau_scaling.rs

crates/bench/benches/tableau_scaling.rs:
