/root/repo/target/debug/deps/jsonio-bc97baa94b5a3411.d: crates/jsonio/src/lib.rs

/root/repo/target/debug/deps/libjsonio-bc97baa94b5a3411.rmeta: crates/jsonio/src/lib.rs

crates/jsonio/src/lib.rs:
