/root/repo/target/debug/deps/four_props-c0894d2fc2a7a2e1.d: crates/bench/../../tests/four_props.rs

/root/repo/target/debug/deps/libfour_props-c0894d2fc2a7a2e1.rmeta: crates/bench/../../tests/four_props.rs

crates/bench/../../tests/four_props.rs:
