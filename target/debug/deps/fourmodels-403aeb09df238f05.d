/root/repo/target/debug/deps/fourmodels-403aeb09df238f05.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

/root/repo/target/debug/deps/libfourmodels-403aeb09df238f05.rmeta: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
