/root/repo/target/debug/deps/shoin4-7754fa6c2861cfe4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libshoin4-7754fa6c2861cfe4.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
