/root/repo/target/debug/deps/signed_reduction-ff86a62a62858d91.d: crates/bench/benches/signed_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libsigned_reduction-ff86a62a62858d91.rmeta: crates/bench/benches/signed_reduction.rs Cargo.toml

crates/bench/benches/signed_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
