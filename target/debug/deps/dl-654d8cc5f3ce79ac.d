/root/repo/target/debug/deps/dl-654d8cc5f3ce79ac.d: crates/dl/src/lib.rs crates/dl/src/axiom.rs crates/dl/src/concept.rs crates/dl/src/datatype.rs crates/dl/src/json.rs crates/dl/src/kb.rs crates/dl/src/name.rs crates/dl/src/nnf.rs crates/dl/src/parser.rs crates/dl/src/printer.rs crates/dl/src/snapshot.rs

/root/repo/target/debug/deps/libdl-654d8cc5f3ce79ac.rmeta: crates/dl/src/lib.rs crates/dl/src/axiom.rs crates/dl/src/concept.rs crates/dl/src/datatype.rs crates/dl/src/json.rs crates/dl/src/kb.rs crates/dl/src/name.rs crates/dl/src/nnf.rs crates/dl/src/parser.rs crates/dl/src/printer.rs crates/dl/src/snapshot.rs

crates/dl/src/lib.rs:
crates/dl/src/axiom.rs:
crates/dl/src/concept.rs:
crates/dl/src/datatype.rs:
crates/dl/src/json.rs:
crates/dl/src/kb.rs:
crates/dl/src/name.rs:
crates/dl/src/nnf.rs:
crates/dl/src/parser.rs:
crates/dl/src/printer.rs:
crates/dl/src/snapshot.rs:
