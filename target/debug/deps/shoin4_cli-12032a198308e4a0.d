/root/repo/target/debug/deps/shoin4_cli-12032a198308e4a0.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libshoin4_cli-12032a198308e4a0.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
