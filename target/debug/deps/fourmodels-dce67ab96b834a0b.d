/root/repo/target/debug/deps/fourmodels-dce67ab96b834a0b.d: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libfourmodels-dce67ab96b834a0b.rmeta: crates/fourmodels/src/lib.rs crates/fourmodels/src/check.rs crates/fourmodels/src/enumerate.rs crates/fourmodels/src/table4.rs crates/fourmodels/src/verify.rs Cargo.toml

crates/fourmodels/src/lib.rs:
crates/fourmodels/src/check.rs:
crates/fourmodels/src/enumerate.rs:
crates/fourmodels/src/table4.rs:
crates/fourmodels/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
