/root/repo/target/debug/deps/tableau-2730614161844d0b.d: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libtableau-2730614161844d0b.rmeta: crates/tableau/src/lib.rs crates/tableau/src/blocking.rs crates/tableau/src/clash.rs crates/tableau/src/config.rs crates/tableau/src/datatype_oracle.rs crates/tableau/src/graph.rs crates/tableau/src/model.rs crates/tableau/src/node.rs crates/tableau/src/reasoner.rs crates/tableau/src/rules.rs crates/tableau/src/stats.rs Cargo.toml

crates/tableau/src/lib.rs:
crates/tableau/src/blocking.rs:
crates/tableau/src/clash.rs:
crates/tableau/src/config.rs:
crates/tableau/src/datatype_oracle.rs:
crates/tableau/src/graph.rs:
crates/tableau/src/model.rs:
crates/tableau/src/node.rs:
crates/tableau/src/reasoner.rs:
crates/tableau/src/rules.rs:
crates/tableau/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
