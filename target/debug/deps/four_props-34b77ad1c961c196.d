/root/repo/target/debug/deps/four_props-34b77ad1c961c196.d: crates/bench/../../tests/four_props.rs Cargo.toml

/root/repo/target/debug/deps/libfour_props-34b77ad1c961c196.rmeta: crates/bench/../../tests/four_props.rs Cargo.toml

crates/bench/../../tests/four_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
