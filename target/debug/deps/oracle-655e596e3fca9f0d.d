/root/repo/target/debug/deps/oracle-655e596e3fca9f0d.d: crates/ontolint/tests/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-655e596e3fca9f0d.rmeta: crates/ontolint/tests/oracle.rs Cargo.toml

crates/ontolint/tests/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
