/root/repo/target/debug/deps/criterion-0202f29fdf6dcfaf.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0202f29fdf6dcfaf.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
