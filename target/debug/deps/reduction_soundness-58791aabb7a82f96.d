/root/repo/target/debug/deps/reduction_soundness-58791aabb7a82f96.d: crates/bench/../../tests/reduction_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libreduction_soundness-58791aabb7a82f96.rmeta: crates/bench/../../tests/reduction_soundness.rs Cargo.toml

crates/bench/../../tests/reduction_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
