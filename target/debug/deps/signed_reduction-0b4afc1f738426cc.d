/root/repo/target/debug/deps/signed_reduction-0b4afc1f738426cc.d: crates/bench/benches/signed_reduction.rs

/root/repo/target/debug/deps/libsigned_reduction-0b4afc1f738426cc.rmeta: crates/bench/benches/signed_reduction.rs

crates/bench/benches/signed_reduction.rs:
