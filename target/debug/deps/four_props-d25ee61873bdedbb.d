/root/repo/target/debug/deps/four_props-d25ee61873bdedbb.d: crates/bench/../../tests/four_props.rs

/root/repo/target/debug/deps/four_props-d25ee61873bdedbb: crates/bench/../../tests/four_props.rs

crates/bench/../../tests/four_props.rs:
