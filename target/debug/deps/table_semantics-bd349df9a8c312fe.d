/root/repo/target/debug/deps/table_semantics-bd349df9a8c312fe.d: crates/bench/../../tests/table_semantics.rs

/root/repo/target/debug/deps/table_semantics-bd349df9a8c312fe: crates/bench/../../tests/table_semantics.rs

crates/bench/../../tests/table_semantics.rs:
