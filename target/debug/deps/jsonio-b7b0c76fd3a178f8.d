/root/repo/target/debug/deps/jsonio-b7b0c76fd3a178f8.d: crates/jsonio/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjsonio-b7b0c76fd3a178f8.rmeta: crates/jsonio/src/lib.rs Cargo.toml

crates/jsonio/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
