/root/repo/target/debug/deps/baselines-8e1d097454f93f8b.d: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

/root/repo/target/debug/deps/libbaselines-8e1d097454f93f8b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/classical.rs crates/baselines/src/mcs.rs crates/baselines/src/stratified.rs

crates/baselines/src/lib.rs:
crates/baselines/src/classical.rs:
crates/baselines/src/mcs.rs:
crates/baselines/src/stratified.rs:
