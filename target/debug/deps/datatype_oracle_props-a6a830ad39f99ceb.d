/root/repo/target/debug/deps/datatype_oracle_props-a6a830ad39f99ceb.d: crates/bench/../../tests/datatype_oracle_props.rs Cargo.toml

/root/repo/target/debug/deps/libdatatype_oracle_props-a6a830ad39f99ceb.rmeta: crates/bench/../../tests/datatype_oracle_props.rs Cargo.toml

crates/bench/../../tests/datatype_oracle_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
