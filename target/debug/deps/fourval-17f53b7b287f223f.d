/root/repo/target/debug/deps/fourval-17f53b7b287f223f.d: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

/root/repo/target/debug/deps/libfourval-17f53b7b287f223f.rmeta: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

crates/fourval/src/lib.rs:
crates/fourval/src/bilattice.rs:
crates/fourval/src/consequence.rs:
crates/fourval/src/prop.rs:
crates/fourval/src/signed.rs:
crates/fourval/src/truth.rs:
crates/fourval/src/valuation.rs:
