/root/repo/target/debug/deps/shoin4-bd708c506c9d9b94.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shoin4-bd708c506c9d9b94: crates/cli/src/main.rs

crates/cli/src/main.rs:
