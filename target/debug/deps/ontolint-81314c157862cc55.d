/root/repo/target/debug/deps/ontolint-81314c157862cc55.d: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

/root/repo/target/debug/deps/libontolint-81314c157862cc55.rmeta: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

crates/ontolint/src/lib.rs:
crates/ontolint/src/contradictions.rs:
crates/ontolint/src/cost.rs:
crates/ontolint/src/diagnostics.rs:
crates/ontolint/src/graph.rs:
crates/ontolint/src/hygiene.rs:
