/root/repo/target/debug/deps/shoin4-f261bbe7f3b6cd85.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libshoin4-f261bbe7f3b6cd85.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
