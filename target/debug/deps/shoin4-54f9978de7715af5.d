/root/repo/target/debug/deps/shoin4-54f9978de7715af5.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libshoin4-54f9978de7715af5.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
