/root/repo/target/debug/deps/bench-268f59b2e78a980a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-268f59b2e78a980a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
