/root/repo/target/debug/deps/dl-003e49e652408e9b.d: crates/dl/src/lib.rs crates/dl/src/axiom.rs crates/dl/src/concept.rs crates/dl/src/datatype.rs crates/dl/src/json.rs crates/dl/src/kb.rs crates/dl/src/name.rs crates/dl/src/nnf.rs crates/dl/src/parser.rs crates/dl/src/printer.rs crates/dl/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libdl-003e49e652408e9b.rmeta: crates/dl/src/lib.rs crates/dl/src/axiom.rs crates/dl/src/concept.rs crates/dl/src/datatype.rs crates/dl/src/json.rs crates/dl/src/kb.rs crates/dl/src/name.rs crates/dl/src/nnf.rs crates/dl/src/parser.rs crates/dl/src/printer.rs crates/dl/src/snapshot.rs Cargo.toml

crates/dl/src/lib.rs:
crates/dl/src/axiom.rs:
crates/dl/src/concept.rs:
crates/dl/src/datatype.rs:
crates/dl/src/json.rs:
crates/dl/src/kb.rs:
crates/dl/src/name.rs:
crates/dl/src/nnf.rs:
crates/dl/src/parser.rs:
crates/dl/src/printer.rs:
crates/dl/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
