/root/repo/target/debug/deps/summarize_experiments-9886df589a43bd2d.d: crates/bench/src/bin/summarize_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libsummarize_experiments-9886df589a43bd2d.rmeta: crates/bench/src/bin/summarize_experiments.rs Cargo.toml

crates/bench/src/bin/summarize_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
