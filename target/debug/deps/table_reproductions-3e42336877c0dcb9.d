/root/repo/target/debug/deps/table_reproductions-3e42336877c0dcb9.d: crates/bench/benches/table_reproductions.rs

/root/repo/target/debug/deps/libtable_reproductions-3e42336877c0dcb9.rmeta: crates/bench/benches/table_reproductions.rs

crates/bench/benches/table_reproductions.rs:
