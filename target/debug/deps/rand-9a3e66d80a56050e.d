/root/repo/target/debug/deps/rand-9a3e66d80a56050e.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-9a3e66d80a56050e: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
