/root/repo/target/debug/deps/table4_models-d66fee24db4d9e30.d: crates/bench/../../tests/table4_models.rs

/root/repo/target/debug/deps/libtable4_models-d66fee24db4d9e30.rmeta: crates/bench/../../tests/table4_models.rs

crates/bench/../../tests/table4_models.rs:
