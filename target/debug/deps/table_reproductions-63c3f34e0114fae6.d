/root/repo/target/debug/deps/table_reproductions-63c3f34e0114fae6.d: crates/bench/benches/table_reproductions.rs Cargo.toml

/root/repo/target/debug/deps/libtable_reproductions-63c3f34e0114fae6.rmeta: crates/bench/benches/table_reproductions.rs Cargo.toml

crates/bench/benches/table_reproductions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
