/root/repo/target/debug/deps/ontolint-23672d446e63a6d2.d: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

/root/repo/target/debug/deps/libontolint-23672d446e63a6d2.rmeta: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

crates/ontolint/src/lib.rs:
crates/ontolint/src/contradictions.rs:
crates/ontolint/src/cost.rs:
crates/ontolint/src/diagnostics.rs:
crates/ontolint/src/graph.rs:
crates/ontolint/src/hygiene.rs:
