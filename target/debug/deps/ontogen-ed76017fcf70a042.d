/root/repo/target/debug/deps/ontogen-ed76017fcf70a042.d: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs Cargo.toml

/root/repo/target/debug/deps/libontogen-ed76017fcf70a042.rmeta: crates/ontogen/src/lib.rs crates/ontogen/src/exceptions.rs crates/ontogen/src/inject.rs crates/ontogen/src/lintseed.rs crates/ontogen/src/medical.rs crates/ontogen/src/queries.rs crates/ontogen/src/random.rs crates/ontogen/src/taxonomy.rs crates/ontogen/src/university.rs Cargo.toml

crates/ontogen/src/lib.rs:
crates/ontogen/src/exceptions.rs:
crates/ontogen/src/inject.rs:
crates/ontogen/src/lintseed.rs:
crates/ontogen/src/medical.rs:
crates/ontogen/src/queries.rs:
crates/ontogen/src/random.rs:
crates/ontogen/src/taxonomy.rs:
crates/ontogen/src/university.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
