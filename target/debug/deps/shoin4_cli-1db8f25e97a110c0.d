/root/repo/target/debug/deps/shoin4_cli-1db8f25e97a110c0.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshoin4_cli-1db8f25e97a110c0.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
