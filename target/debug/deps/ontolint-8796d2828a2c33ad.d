/root/repo/target/debug/deps/ontolint-8796d2828a2c33ad.d: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

/root/repo/target/debug/deps/ontolint-8796d2828a2c33ad: crates/ontolint/src/lib.rs crates/ontolint/src/contradictions.rs crates/ontolint/src/cost.rs crates/ontolint/src/diagnostics.rs crates/ontolint/src/graph.rs crates/ontolint/src/hygiene.rs

crates/ontolint/src/lib.rs:
crates/ontolint/src/contradictions.rs:
crates/ontolint/src/cost.rs:
crates/ontolint/src/diagnostics.rs:
crates/ontolint/src/graph.rs:
crates/ontolint/src/hygiene.rs:
