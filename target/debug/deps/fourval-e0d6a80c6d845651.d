/root/repo/target/debug/deps/fourval-e0d6a80c6d845651.d: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

/root/repo/target/debug/deps/fourval-e0d6a80c6d845651: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs

crates/fourval/src/lib.rs:
crates/fourval/src/bilattice.rs:
crates/fourval/src/consequence.rs:
crates/fourval/src/prop.rs:
crates/fourval/src/signed.rs:
crates/fourval/src/truth.rs:
crates/fourval/src/valuation.rs:
