/root/repo/target/debug/deps/parser_roundtrip-afc5992bbcfde1bf.d: crates/bench/../../tests/parser_roundtrip.rs

/root/repo/target/debug/deps/libparser_roundtrip-afc5992bbcfde1bf.rmeta: crates/bench/../../tests/parser_roundtrip.rs

crates/bench/../../tests/parser_roundtrip.rs:
