/root/repo/target/debug/deps/complexity_parity-c8aa1065e784dd3c.d: crates/bench/benches/complexity_parity.rs Cargo.toml

/root/repo/target/debug/deps/libcomplexity_parity-c8aa1065e784dd3c.rmeta: crates/bench/benches/complexity_parity.rs Cargo.toml

crates/bench/benches/complexity_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
