/root/repo/target/debug/deps/fourval-c70f61dab6a2990c.d: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs Cargo.toml

/root/repo/target/debug/deps/libfourval-c70f61dab6a2990c.rmeta: crates/fourval/src/lib.rs crates/fourval/src/bilattice.rs crates/fourval/src/consequence.rs crates/fourval/src/prop.rs crates/fourval/src/signed.rs crates/fourval/src/truth.rs crates/fourval/src/valuation.rs Cargo.toml

crates/fourval/src/lib.rs:
crates/fourval/src/bilattice.rs:
crates/fourval/src/consequence.rs:
crates/fourval/src/prop.rs:
crates/fourval/src/signed.rs:
crates/fourval/src/truth.rs:
crates/fourval/src/valuation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
