/root/repo/target/debug/deps/table_semantics-e661f5caed44624f.d: crates/bench/../../tests/table_semantics.rs

/root/repo/target/debug/deps/libtable_semantics-e661f5caed44624f.rmeta: crates/bench/../../tests/table_semantics.rs

crates/bench/../../tests/table_semantics.rs:
