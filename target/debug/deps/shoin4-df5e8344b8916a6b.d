/root/repo/target/debug/deps/shoin4-df5e8344b8916a6b.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs

/root/repo/target/debug/deps/libshoin4-df5e8344b8916a6b.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/inclusion.rs crates/core/src/induced.rs crates/core/src/interp4.rs crates/core/src/json.rs crates/core/src/kb4.rs crates/core/src/parser4.rs crates/core/src/printer4.rs crates/core/src/reasoner4.rs crates/core/src/transform.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/inclusion.rs:
crates/core/src/induced.rs:
crates/core/src/interp4.rs:
crates/core/src/json.rs:
crates/core/src/kb4.rs:
crates/core/src/parser4.rs:
crates/core/src/printer4.rs:
crates/core/src/reasoner4.rs:
crates/core/src/transform.rs:
