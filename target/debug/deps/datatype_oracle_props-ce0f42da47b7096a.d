/root/repo/target/debug/deps/datatype_oracle_props-ce0f42da47b7096a.d: crates/bench/../../tests/datatype_oracle_props.rs

/root/repo/target/debug/deps/libdatatype_oracle_props-ce0f42da47b7096a.rmeta: crates/bench/../../tests/datatype_oracle_props.rs

crates/bench/../../tests/datatype_oracle_props.rs:
