/root/repo/target/debug/deps/rand-fca2d141ddbc4fcf.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-fca2d141ddbc4fcf.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
