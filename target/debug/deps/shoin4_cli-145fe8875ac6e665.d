/root/repo/target/debug/deps/shoin4_cli-145fe8875ac6e665.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/shoin4_cli-145fe8875ac6e665: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
