/root/repo/target/debug/deps/jsonio-91a061a4ae47b124.d: crates/jsonio/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjsonio-91a061a4ae47b124.rmeta: crates/jsonio/src/lib.rs Cargo.toml

crates/jsonio/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
