/root/repo/target/debug/examples/diagnose-a76a4f471af295ca.d: crates/core/../../examples/diagnose.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose-a76a4f471af295ca.rmeta: crates/core/../../examples/diagnose.rs Cargo.toml

crates/core/../../examples/diagnose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
