/root/repo/target/debug/examples/adoption-0d9dfc076dba1656.d: crates/fourmodels/../../examples/adoption.rs Cargo.toml

/root/repo/target/debug/examples/libadoption-0d9dfc076dba1656.rmeta: crates/fourmodels/../../examples/adoption.rs Cargo.toml

crates/fourmodels/../../examples/adoption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
