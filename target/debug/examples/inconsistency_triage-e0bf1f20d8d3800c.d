/root/repo/target/debug/examples/inconsistency_triage-e0bf1f20d8d3800c.d: crates/bench/../../examples/inconsistency_triage.rs

/root/repo/target/debug/examples/libinconsistency_triage-e0bf1f20d8d3800c.rmeta: crates/bench/../../examples/inconsistency_triage.rs

crates/bench/../../examples/inconsistency_triage.rs:
