/root/repo/target/debug/examples/inconsistency_triage-900eedc9ab3c7d21.d: crates/bench/../../examples/inconsistency_triage.rs

/root/repo/target/debug/examples/inconsistency_triage-900eedc9ab3c7d21: crates/bench/../../examples/inconsistency_triage.rs

crates/bench/../../examples/inconsistency_triage.rs:
