/root/repo/target/debug/examples/inconsistency_triage-1a8b0bb6e1b50aa6.d: crates/bench/../../examples/inconsistency_triage.rs Cargo.toml

/root/repo/target/debug/examples/libinconsistency_triage-1a8b0bb6e1b50aa6.rmeta: crates/bench/../../examples/inconsistency_triage.rs Cargo.toml

crates/bench/../../examples/inconsistency_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
