/root/repo/target/debug/examples/penguin-a1f6926a630c2af4.d: crates/core/../../examples/penguin.rs Cargo.toml

/root/repo/target/debug/examples/libpenguin-a1f6926a630c2af4.rmeta: crates/core/../../examples/penguin.rs Cargo.toml

crates/core/../../examples/penguin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
