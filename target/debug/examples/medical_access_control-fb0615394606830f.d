/root/repo/target/debug/examples/medical_access_control-fb0615394606830f.d: crates/bench/../../examples/medical_access_control.rs

/root/repo/target/debug/examples/libmedical_access_control-fb0615394606830f.rmeta: crates/bench/../../examples/medical_access_control.rs

crates/bench/../../examples/medical_access_control.rs:
