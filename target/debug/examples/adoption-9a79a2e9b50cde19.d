/root/repo/target/debug/examples/adoption-9a79a2e9b50cde19.d: crates/fourmodels/../../examples/adoption.rs

/root/repo/target/debug/examples/adoption-9a79a2e9b50cde19: crates/fourmodels/../../examples/adoption.rs

crates/fourmodels/../../examples/adoption.rs:
