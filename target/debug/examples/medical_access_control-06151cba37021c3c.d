/root/repo/target/debug/examples/medical_access_control-06151cba37021c3c.d: crates/bench/../../examples/medical_access_control.rs Cargo.toml

/root/repo/target/debug/examples/libmedical_access_control-06151cba37021c3c.rmeta: crates/bench/../../examples/medical_access_control.rs Cargo.toml

crates/bench/../../examples/medical_access_control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
