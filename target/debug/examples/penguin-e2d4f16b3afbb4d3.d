/root/repo/target/debug/examples/penguin-e2d4f16b3afbb4d3.d: crates/core/../../examples/penguin.rs

/root/repo/target/debug/examples/libpenguin-e2d4f16b3afbb4d3.rmeta: crates/core/../../examples/penguin.rs

crates/core/../../examples/penguin.rs:
