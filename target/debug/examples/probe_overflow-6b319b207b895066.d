/root/repo/target/debug/examples/probe_overflow-6b319b207b895066.d: crates/fourmodels/examples/probe_overflow.rs

/root/repo/target/debug/examples/probe_overflow-6b319b207b895066: crates/fourmodels/examples/probe_overflow.rs

crates/fourmodels/examples/probe_overflow.rs:
