/root/repo/target/debug/examples/adoption-b05043b854efdecd.d: crates/fourmodels/../../examples/adoption.rs

/root/repo/target/debug/examples/libadoption-b05043b854efdecd.rmeta: crates/fourmodels/../../examples/adoption.rs

crates/fourmodels/../../examples/adoption.rs:
