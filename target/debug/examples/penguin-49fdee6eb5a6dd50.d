/root/repo/target/debug/examples/penguin-49fdee6eb5a6dd50.d: crates/core/../../examples/penguin.rs

/root/repo/target/debug/examples/penguin-49fdee6eb5a6dd50: crates/core/../../examples/penguin.rs

crates/core/../../examples/penguin.rs:
