/root/repo/target/debug/examples/quickstart-63cfa73546e41d97.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-63cfa73546e41d97: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
