/root/repo/target/debug/examples/quickstart-272c976155d49fde.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-272c976155d49fde.rmeta: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
