/root/repo/target/debug/examples/diagnose-4b554e913ee3713e.d: crates/core/../../examples/diagnose.rs

/root/repo/target/debug/examples/libdiagnose-4b554e913ee3713e.rmeta: crates/core/../../examples/diagnose.rs

crates/core/../../examples/diagnose.rs:
