/root/repo/target/debug/examples/diagnose-98cdbb11e251f034.d: crates/core/../../examples/diagnose.rs

/root/repo/target/debug/examples/diagnose-98cdbb11e251f034: crates/core/../../examples/diagnose.rs

crates/core/../../examples/diagnose.rs:
