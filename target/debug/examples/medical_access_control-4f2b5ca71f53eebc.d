/root/repo/target/debug/examples/medical_access_control-4f2b5ca71f53eebc.d: crates/bench/../../examples/medical_access_control.rs

/root/repo/target/debug/examples/medical_access_control-4f2b5ca71f53eebc: crates/bench/../../examples/medical_access_control.rs

crates/bench/../../examples/medical_access_control.rs:
