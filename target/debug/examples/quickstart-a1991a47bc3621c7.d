/root/repo/target/debug/examples/quickstart-a1991a47bc3621c7.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a1991a47bc3621c7.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
